//! Online-serving throughput bench: sweeps worker-thread counts (up to
//! the host's available parallelism) and arrival-batch sizes over a
//! MIT-States-style corpus served by [`must_core::MustServer`], reporting
//! QPS, p50/p99 per-query latency, per-thread-count scaling efficiency,
//! and Recall@10 against the exact joint-similarity oracle — plus a
//! **shard sweep** (S ∈ {1, 2, 4, 8}) through
//! [`must_core::shard::ShardedServer`]'s scatter-gather path, a
//! **routing sweep** (clustered S = 8, fan-out r ∈ {1, 2, 4, 8}) showing
//! what selective shard routing buys once similar objects share a shard, a
//! **weight-churn sweep**: the query stream switches its user weight
//! vector every Q queries, comparing the `search_batch_weighted`
//! query-time-weighting path against the rebuild-per-switch baseline the
//! prescaled storage used to require, and an **open-loop sweep** driving
//! the [`must_core::runtime::ServeRuntime`] at fixed arrival rates on a
//! virtual-time schedule, with latency measured enqueue→reply so
//! queueing delay is honest (no coordinated omission).
//!
//! Writes `BENCH_serving.json` at the repository root (override with
//! `MUST_BENCH_PATH`) plus a copy under `EXPERIMENTS-out/`, so the bench
//! trajectory tracks serving performance across PRs.  Scale with
//! `MUST_SCALE` as usual (CI runs a tiny smoke configuration).  The
//! artefact records `host_threads` (the machine's available parallelism
//! at bench time): thread-scaling figures from a single-hardware-thread
//! host measure scheduler overhead, not parallel speedup, and the schema
//! checker's scaling gates key off this field.
//!
//! `--scale` runs *only* the **scale tier**: a semi-synthetic ImageText
//! corpus streamed object-by-object through the encoders (1M objects by
//! default; `MUST_SCALE_N` overrides, else `MUST_SCALE` scales the
//! million), SQ8-quantized, and served through the quantized-scan +
//! exact-re-rank path.  The resulting entry is merged into the existing
//! artefact (replacing any entry with the same `n_objects`), so the
//! expensive tier can be refreshed out-of-band without re-running the
//! full sweeps; plain runs carry the committed `scale_tier` forward.
//!
//! `--build-sweep` runs *only* the **build-throughput sweep**: the
//! 64k-object semi-synthetic corpus (`MUST_SCALE_N` overrides)
//! wave-built at every thread count `T ∈ {1, 2, 4, 8, 16, avail}` up to
//! the host's available parallelism, asserting the bundles are
//! byte-identical across the sweep and recording `build_secs` +
//! `speedup_vs_t1` per point.  Merged and carried like `scale_tier`.

use std::time::{Duration, Instant};

use must_bench::efficiency::{prepare, semisynthetic_config};
use must_bench::report::{f4, percentile_ms};
use must_core::metrics::recall_at;
use must_core::runtime::ServeRuntime;
use must_core::search::{exact_ground_truth, SearchOutcome};
use must_core::server::{MustServer, ServeRequest};
use must_core::shard::{RoutePolicy, ShardSpec, ShardedMust, ShardedServer};
use must_core::{Must, MustBuildOptions, MustError};
use must_data::semisynthetic::{SemiSyntheticSpec, SemiSyntheticStream};
use must_encoders::{Embedder, UnimodalKind};
use must_graph::GraphRecipe;
use must_vector::{MultiQuery, MultiVectorSet, ObjectId, VectorSetBuilder, Weights};
use serde::{Serialize, Value};

/// One `(threads, batch)` operating point of the single-shard server.
#[derive(Debug, Clone, Serialize)]
struct Entry {
    threads: usize,
    batch: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
    /// `QPS_t / (t · QPS_1)` at the same batch size: 1.0 is perfect
    /// scaling, `1/t` is no scaling (the single-core ceiling).
    scaling_efficiency: f64,
}

/// One point of the shard sweep (fixed threads × batch, varying S).
#[derive(Debug, Clone, Serialize)]
struct ShardEntry {
    shards: usize,
    threads: usize,
    batch: usize,
    build_secs: f64,
    /// Total worker budget the build ran under (`MUST_BUILD_THREADS`-capped
    /// available parallelism, divided between concurrent shard builds).
    build_threads: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// One point of the routing sweep: a clustered `S`-shard deployment
/// scattering each query to only the `fan_out` best-scoring shards
/// (per-shard beam `l_shard`), so selectivity — not raw fan-out —
/// decides the per-query cost.
#[derive(Debug, Clone, Serialize)]
struct RoutingEntry {
    shards: usize,
    threads: usize,
    batch: usize,
    /// Shards actually searched per query (`r` in the routing policy).
    fan_out: usize,
    /// Beam width used inside each routed shard.
    l_shard: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// One point of the weight-churn sweep: the stream switches its user
/// weight vector every `switch_every` queries.
#[derive(Debug, Clone, Serialize)]
struct ChurnEntry {
    switch_every: usize,
    switches: usize,
    threads: usize,
    /// Steady-state QPS: the same workload under one fixed weight vector.
    steady_qps: f64,
    /// QPS of the per-query-weight path (`search_batch_weighted`, no
    /// rebuilds — the weight override rides on the query row).
    churn_qps: f64,
    /// QPS of the rebuild-per-switch baseline (wall clock includes every
    /// `Must::build` + freeze the prescaled storage model would need).
    rebuild_qps: f64,
    /// `churn_qps / steady_qps` — the acceptance pin is >= 0.9.
    churn_over_steady: f64,
    recall_at_10_churn: f64,
    recall_at_10_rebuild: f64,
}

/// One open-loop operating point: requests arrive on a fixed-rate
/// virtual-time schedule and latency is measured from the *scheduled*
/// arrival to the reply, so time spent queueing behind a busy worker
/// counts against the system (the closed-loop sweep above can never see
/// that delay — it only issues the next batch once the previous one
/// finished).
#[derive(Debug, Clone, Serialize)]
struct OpenLoopEntry {
    workers: usize,
    /// Offered arrival rate (requests/second) of the virtual schedule.
    target_qps: f64,
    /// Requests offered (the full query workload).
    offered: usize,
    /// Completions divided by the wall clock from first scheduled
    /// arrival to last reply.
    achieved_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// One scale-tier entry: a semi-synthetic ImageText corpus streamed
/// through the encoders (no materialised latent set), built, SQ8
/// scalar-quantized, and served through the quantized-scan +
/// exact-re-rank path.
#[derive(Debug, Clone, Serialize)]
struct ScaleEntry {
    dataset: String,
    n_objects: usize,
    n_queries: usize,
    /// Sum of the per-modality embedding dims (the `D` in bytes/dim).
    total_dims: usize,
    /// Hot-path storage per object: the u8 codes the Lemma-4 walk scans
    /// plus the retained f32 rows the exact re-rank reads.
    bytes_per_object: usize,
    /// `bytes_per_object / total_dims` — the schema gate is ≤ 5.
    bytes_per_dim: f64,
    /// Per-object bookkeeping outside the gate: the SQ8 affine params
    /// (min/step/eps per modality) plus the quantizer's segment-norm
    /// copy.
    overhead_bytes_per_object: f64,
    /// Streaming generation + embedding wall clock (corpus + queries).
    embed_secs: f64,
    /// `Must::build` + `quantize()` wall clock.
    build_secs: f64,
    /// Worker budget the wave-scheduled graph build ran under (the graph
    /// itself is byte-identical for any value of this knob).
    build_threads: usize,
    threads: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
    /// Quantized-walk survivors re-ranked exactly on the f32 rows.
    rerank_k: usize,
    /// Beam width the reported numbers were measured at. A beam that is
    /// right-sized at 64k starves at 1M, so the tier escalates `l` on
    /// the one expensive build until recall clears the CI gate.
    l: usize,
}

/// One point of the build-throughput sweep: the same semi-synthetic
/// corpus wave-built at a fixed explicit thread budget.  The graphs are
/// byte-identical across the sweep (asserted at measurement time), so
/// the only thing that moves is the wall clock.
#[derive(Debug, Clone, Serialize)]
struct BuildEntry {
    n_objects: usize,
    threads: usize,
    build_secs: f64,
    /// `build_secs(T=1) / build_secs(T)` on this corpus; 1.0 at T=1.
    speedup_vs_t1: f64,
}

/// The whole artefact.
#[derive(Debug, Clone, Serialize)]
struct ServingBench {
    bench: String,
    dataset: String,
    index: String,
    n_objects: usize,
    n_queries: usize,
    k: usize,
    l: usize,
    /// `std::thread::available_parallelism()` on the benching host; the
    /// scaling gates in `check_serving_schema` only arm when this is ≥ 2
    /// (on one hardware thread, `threads=2` measures preemption, not
    /// parallelism).
    host_threads: usize,
    entries: Vec<Entry>,
    shard_entries: Vec<ShardEntry>,
    routing: Vec<RoutingEntry>,
    weight_churn: Vec<ChurnEntry>,
    open_loop: Vec<OpenLoopEntry>,
    /// Scale-tier entries, measured out-of-band via `--scale` and merged
    /// into the artefact; plain runs carry the existing entries forward
    /// (kept as raw JSON values so a full re-run never drops the
    /// expensive tier).
    scale_tier: Vec<Value>,
    /// Build-throughput sweep (`--build-sweep`): wave-build wall clock at
    /// each thread count on the 64k semi-synthetic corpus.  Carried
    /// forward by plain runs exactly like `scale_tier`.
    build_sweep: Vec<Value>,
}

/// Drives one operating point through any batch-search entry point and
/// reduces it to throughput, latency percentiles, and recall.  Only the
/// searches sit inside the timed region (recall scoring runs after the
/// clock stops), and the whole point takes the best of two passes so a
/// transient load spike on a shared host cannot skew one thread count
/// against another.
fn measure(
    search_batch: impl Fn(&[MultiQuery]) -> Vec<Result<SearchOutcome, MustError>>,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    batch: usize,
) -> (f64, f64, f64, f64) {
    let mut best_qps = 0.0f64;
    let mut best: Option<Vec<SearchOutcome>> = None;
    for _pass in 0..2 {
        let mut outcomes: Vec<SearchOutcome> = Vec::with_capacity(queries.len());
        let t0 = Instant::now();
        for qs in queries.chunks(batch) {
            for out in search_batch(qs) {
                outcomes.push(out.expect("workload queries are well-formed"));
            }
        }
        let qps = queries.len() as f64 / t0.elapsed().as_secs_f64();
        if qps > best_qps {
            best_qps = qps;
            best = Some(outcomes);
        }
    }
    let outcomes = best.expect("at least one pass ran");
    let mut recall_sum = 0.0;
    let mut latencies: Vec<f64> = Vec::with_capacity(queries.len());
    for (out, gt) in outcomes.iter().zip(ground_truth) {
        latencies.push(out.secs);
        let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
        recall_sum += recall_at(&ids, gt, k);
    }
    latencies.sort_unstable_by(f64::total_cmp);
    (
        best_qps,
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 99.0),
        recall_sum / queries.len() as f64,
    )
}

fn run_point(
    server: &MustServer,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    l: usize,
    threads: usize,
    batch: usize,
) -> Entry {
    let (qps, p50_ms, p99_ms, recall_at_10) = measure(
        |qs| server.search_batch(qs, k, l, threads),
        queries,
        ground_truth,
        k,
        batch,
    );
    Entry { threads, batch, qps, p50_ms, p99_ms, recall_at_10, scaling_efficiency: 1.0 }
}

/// One open-loop point: a producer thread walks a fixed-rate virtual-time
/// schedule (request `i` is *due* at `i / rate`), submitting into the
/// runtime's lanes; a collector thread stamps each reply against the
/// request's scheduled arrival.  A late submission therefore charges its
/// own lateness to the measurement — the open-loop (coordinated-omission
/// -free) latency discipline.
fn open_loop_point(
    server: &MustServer,
    queries: &[MultiQuery],
    k: usize,
    l: usize,
    workers: usize,
    rate: f64,
) -> OpenLoopEntry {
    let n = queries.len();
    let interval = 1.0 / rate;
    let (rep_tx, rep_rx) = std::sync::mpsc::channel();
    let runtime = ServeRuntime::start(server, workers, rep_tx);
    let t0 = Instant::now();
    let collector = std::thread::spawn(move || {
        let mut lat = vec![0.0f64; n];
        let mut replies = 0usize;
        // The channel closes once the runtime's workers exit (after
        // `shutdown` drains the lanes), ending this loop.
        for rep in rep_rx {
            let now = t0.elapsed().as_secs_f64();
            rep.outcome.expect("workload queries are well-formed");
            lat[rep.id as usize] = now - interval * rep.id as f64;
            replies += 1;
        }
        (lat, replies)
    });
    for (i, q) in queries.iter().enumerate() {
        let due = interval * i as f64;
        loop {
            let now = t0.elapsed().as_secs_f64();
            if now >= due {
                break;
            }
            // Coarse sleep toward the deadline; the cap keeps wake-up
            // jitter well under the measured latencies.
            std::thread::sleep(Duration::from_secs_f64((due - now).min(2e-4)));
        }
        runtime.submit(ServeRequest { id: i as u64, query: q.clone(), k, l });
    }
    let served = runtime.shutdown();
    let wall = t0.elapsed().as_secs_f64();
    let (mut lat, replies) = collector.join().expect("collector thread panicked");
    assert_eq!(served, n, "open loop must drain every request");
    assert_eq!(replies, n, "every request gets exactly one reply");
    lat.sort_unstable_by(f64::total_cmp);
    OpenLoopEntry {
        workers,
        target_qps: rate,
        offered: n,
        achieved_qps: n as f64 / wall,
        p50_ms: percentile_ms(&lat, 50.0),
        p99_ms: percentile_ms(&lat, 99.0),
    }
}

/// Runs the weight-churn sweep: for each switch interval, measure the
/// steady-state QPS (one fixed weight vector), the query-time-weighting
/// churn QPS (same snapshot, `search_batch_weighted` per chunk), and the
/// rebuild-per-switch baseline (a fresh `Must::build` + freeze per
/// chunk), each with Recall@10 against the exact oracle *under the
/// chunk's own weights*.
fn churn_sweep(
    server: &MustServer,
    corpus: &MultiVectorSet,
    default_weights: &Weights,
    queries: &[MultiQuery],
    k: usize,
    l: usize,
    threads: usize,
) -> Vec<ChurnEntry> {
    // The weight cycle: the learned configuration plus two user-defined
    // vectors (Tab. IX style sweeps of omega^2).
    let cycle: Vec<Weights> = vec![
        default_weights.clone(),
        Weights::from_squared(vec![0.8, 0.2]).expect("valid"),
        Weights::from_squared(vec![0.3, 0.7]).expect("valid"),
    ];
    let ground_truths: Vec<Vec<Vec<ObjectId>>> = cycle
        .iter()
        .map(|w| exact_ground_truth(corpus, w, queries, k).expect("valid workload"))
        .collect();

    let mut out = Vec::new();
    // Bound the rebuild count so the baseline stays measurable at any
    // scale: roughly 6 switches over the stream.
    let switch_every = (queries.len() / 6).max(16).min(queries.len().max(1));
    // The first chunk runs under the frozen default — only subsequent
    // chunk boundaries actually switch weights.
    let switches = queries.len().div_ceil(switch_every).saturating_sub(1);

    // Steady state: the whole stream under the default weights.  Both
    // no-rebuild phases take the best of two passes, so a transient
    // load spike on a shared host cannot skew the churn/steady ratio
    // the schema check gates on.
    let steady_qps = (0..2)
        .map(|_| {
            let t0 = Instant::now();
            for qs in queries.chunks(switch_every) {
                for r in server.search_batch(qs, k, l, threads) {
                    r.expect("workload queries are well-formed");
                }
            }
            queries.len() as f64 / t0.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max);

    // Query-time weighting: switch the override per chunk, same snapshot.
    // The timed region mirrors the steady pass exactly — search + unwrap
    // only; recall is scored against the per-chunk oracle *after* the
    // clock stops, so the churn/steady ratio compares the two search
    // paths rather than charging the churn side for bench bookkeeping.
    let mut responses = Vec::with_capacity(queries.len());
    let mut churn_qps = 0.0f64;
    for _pass in 0..2 {
        responses.clear();
        let t0 = Instant::now();
        for (ci, qs) in queries.chunks(switch_every).enumerate() {
            let w = &cycle[ci % cycle.len()];
            for r in server.search_batch_weighted(qs, w, k, l, threads) {
                responses.push(r.expect("workload queries are well-formed"));
            }
        }
        churn_qps = churn_qps.max(queries.len() as f64 / t0.elapsed().as_secs_f64());
    }
    let recall_churn: f64 = responses
        .iter()
        .enumerate()
        .map(|(qi, r)| {
            let gt = &ground_truths[(qi / switch_every) % cycle.len()][qi];
            let ids: Vec<ObjectId> = r.results.iter().map(|x| x.0).collect();
            recall_at(&ids, gt, k)
        })
        .sum();

    // Rebuild-per-switch baseline: every weight *switch* pays a full
    // offline build + freeze before it can answer its chunk; chunk 0
    // runs under the frozen default, which a prescaled deployment
    // already has.
    let mut recall_rebuild = 0.0;
    let t0 = Instant::now();
    for (ci, qs) in queries.chunks(switch_every).enumerate() {
        let w = &cycle[ci % cycle.len()];
        let gt = &ground_truths[ci % cycle.len()][ci * switch_every..];
        let srv = if ci == 0 {
            server.clone()
        } else {
            MustServer::freeze(
                Must::build(corpus.clone(), w.clone(), MustBuildOptions::default())
                    .expect("rebuild"),
            )
        };
        for (r, gt) in srv.search_batch(qs, k, l, threads).into_iter().zip(gt) {
            let r = r.expect("workload queries are well-formed");
            let ids: Vec<ObjectId> = r.results.iter().map(|x| x.0).collect();
            recall_rebuild += recall_at(&ids, gt, k);
        }
    }
    let rebuild_qps = queries.len() as f64 / t0.elapsed().as_secs_f64();

    let n = queries.len() as f64;
    let e = ChurnEntry {
        switch_every,
        switches,
        threads,
        steady_qps,
        churn_qps,
        rebuild_qps,
        churn_over_steady: churn_qps / steady_qps,
        recall_at_10_churn: recall_churn / n,
        recall_at_10_rebuild: recall_rebuild / n,
    };
    eprintln!(
        "[serving] churn every {}q ({} switches): steady={} qps, per-query-weights={} qps \
         ({:.2}x steady), rebuild-per-switch={} qps, recall@10 churn={} rebuild={}",
        e.switch_every,
        e.switches,
        f4(e.steady_qps),
        f4(e.churn_qps),
        e.churn_over_steady,
        f4(e.rebuild_qps),
        f4(e.recall_at_10_churn),
        f4(e.recall_at_10_rebuild),
    );
    out.push(e);
    out
}

/// Streams `n` semi-synthetic ImageText objects through the encoders one
/// at a time (constant latent memory) and embeds the 64-query workload.
/// Returns `(dataset_name, corpus, queries, embed_secs)`.
fn embed_semisynthetic(n: usize) -> (String, MultiVectorSet, Vec<MultiQuery>, f64) {
    let stream = SemiSyntheticStream::new(SemiSyntheticSpec {
        name: "ImageText1M".into(),
        n_objects: n,
        n_queries: 64,
        n_attrs: 256,
        query_perturbation: 0.25,
        seed: must_bench::DATASET_SEED,
    });
    let registry = must_bench::registry();
    let config = semisynthetic_config();
    let image = registry.target_embedder(&config);
    let text = registry.unimodal(UnimodalKind::Lstm);

    eprintln!("[serving] streaming + embedding {n} semi-synthetic objects");
    let t0 = Instant::now();
    let mut b0 = VectorSetBuilder::new(image.dim(), n);
    let mut b1 = VectorSetBuilder::new(text.dim(), n);
    for id in 0..n as u64 {
        let latents = stream.object(id);
        b0.push_normalized(&image.embed(&latents[0])).expect("encoders emit valid vectors");
        b1.push_normalized(&text.embed(&latents[1])).expect("encoders emit valid vectors");
        if (id + 1) % 250_000 == 0 {
            eprintln!(
                "[serving]   embedded {} / {n} ({}s)",
                id + 1,
                f4(t0.elapsed().as_secs_f64())
            );
        }
    }
    let objects =
        MultiVectorSet::new(vec![b0.finish(), b1.finish()]).expect("equal cardinality");
    let queries: Vec<MultiQuery> = stream
        .queries()
        .iter()
        .map(|q| {
            let qi = q.latents[0].as_ref().expect("target latent supplied");
            let qt = q.latents[1].as_ref().expect("text latent supplied");
            MultiQuery::full(vec![image.embed(qi), text.embed(qt)])
        })
        .collect();
    let embed_secs = t0.elapsed().as_secs_f64();
    (stream.spec().name.clone(), objects, queries, embed_secs)
}

/// Runs the scale tier: streams `n` semi-synthetic objects through the
/// encoders one at a time (constant latent memory), builds the index,
/// attaches the SQ8 engine, and measures the quantized-scan +
/// exact-re-rank serving path against the exact joint oracle.
fn run_scale_tier(k: usize, l: usize) -> ScaleEntry {
    let n = std::env::var("MUST_SCALE_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| (1_000_000.0 * must_bench::scale()).round() as usize)
        .max(256);
    let (dataset, objects, queries, embed_secs) = embed_semisynthetic(n);

    let weights = Weights::uniform(2);
    let ground_truth =
        exact_ground_truth(&objects, &weights, &queries, k).expect("valid workload");

    eprintln!("[serving] scale tier: building the index (embed took {}s)", f4(embed_secs));
    let t0 = Instant::now();
    let mut must = Must::build(
        objects,
        weights,
        MustBuildOptions { gamma: 16, recipe: GraphRecipe::Hnsw, ..Default::default() },
    )
    .expect("scale-tier build");
    must.quantize();
    let build_secs = t0.elapsed().as_secs_f64();

    let fused = must.objects().fused();
    let total_dims: usize = fused.dims().iter().sum();
    let stride = fused.stride();
    // Hot-path bytes: stride f32 lanes retained for the exact re-rank
    // plus stride u8 codes for the quantized walk.
    let bytes_per_object = stride * 4 + stride;
    let quant = must.quant().expect("quantize() attached the engine");
    let overhead_bytes_per_object = (quant.bytes() - n * stride) as f64 / n as f64;

    let server = MustServer::freeze(must);
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let rerank_k = k.saturating_mul(4).min(n);
    // The CI gate wants recall@10 ≥ 0.97 at 1M, and a beam that is
    // right-sized at 64k starves there (0.98 → 0.84 at l=100). The
    // build is the expensive part, so escalate the beam on this one
    // index until recall clears the gate with a little margin.
    let mut l = l;
    let mut measured = measure(
        |qs| server.search_batch(qs, k, l, threads),
        &queries,
        &ground_truth,
        k,
        16,
    );
    while measured.3 < 0.975 && l < 4096 {
        eprintln!(
            "[serving]   recall@10 {} at l={l} — widening the beam",
            f4(measured.3)
        );
        l *= 2;
        measured = measure(
            |qs| server.search_batch(qs, k, l, threads),
            &queries,
            &ground_truth,
            k,
            16,
        );
    }
    let (qps, p50_ms, p99_ms, recall_at_10) = measured;

    let e = ScaleEntry {
        dataset,
        n_objects: n,
        n_queries: queries.len(),
        total_dims,
        bytes_per_object,
        bytes_per_dim: bytes_per_object as f64 / total_dims as f64,
        overhead_bytes_per_object,
        embed_secs,
        build_secs,
        build_threads: must_graph::par::build_threads(),
        threads,
        qps,
        p50_ms,
        p99_ms,
        recall_at_10,
        rerank_k,
        l,
    };
    eprintln!(
        "[serving] scale n={} dims={} bytes/obj={} ({:.2} B/dim, +{:.1} B overhead) \
         embed={}s build={}s qps={} p50={}ms p99={}ms recall@10={} rerank_k={} l={}",
        e.n_objects,
        e.total_dims,
        e.bytes_per_object,
        e.bytes_per_dim,
        e.overhead_bytes_per_object,
        f4(e.embed_secs),
        f4(e.build_secs),
        f4(e.qps),
        f4(e.p50_ms),
        f4(e.p99_ms),
        f4(e.recall_at_10),
        e.rerank_k,
        e.l,
    );
    e
}

/// Round-trips a `ScaleEntry` into the generic JSON tree so it can be
/// spliced into an artefact parsed from disk.
fn scale_entry_value(e: &ScaleEntry) -> Value {
    let json = serde_json::to_string_pretty(e).expect("serialisable entry");
    serde_json::from_str(&json).expect("own serialisation parses")
}

fn n_objects_of(v: &Value) -> f64 {
    v.get_field("n_objects").and_then(Value::as_num).unwrap_or(-1.0)
}

/// Merges `entry` into the artefact at `path`: replaces the scale-tier
/// entry with the same `n_objects`, appends (sorted by size) otherwise.
/// The rest of the artefact — the full sweeps — is left untouched, so
/// the expensive tier refreshes without re-running them.
fn merge_scale_entry(path: &str, entry: &ScaleEntry) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("`--scale` merges into an existing artefact ({path}: {e}); run the full serving bench first")
    });
    let mut doc: Value = serde_json::from_str(&text).expect("valid artefact JSON");
    let ev = scale_entry_value(entry);
    let Value::Object(fields) = &mut doc else {
        panic!("artefact root is not a JSON object");
    };
    match fields.iter_mut().find(|(name, _)| name.as_str() == "scale_tier") {
        Some((_, Value::Array(items))) => {
            if let Some(slot) = items.iter_mut().find(|v| n_objects_of(v) == n_objects_of(&ev)) {
                *slot = ev;
            } else {
                items.push(ev);
                items.sort_by(|a, b| n_objects_of(a).total_cmp(&n_objects_of(b)));
            }
        }
        Some((_, other)) => *other = Value::Array(vec![ev]),
        None => fields.push(("scale_tier".into(), Value::Array(vec![ev]))),
    }
    let json = serde_json::to_string_pretty(&doc).expect("serialisable artefact");
    std::fs::write(path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("merged scale tier into {path}");
}

/// The scale-tier entries already recorded at `path`, if any — plain
/// runs re-emit them verbatim instead of dropping the expensive tier.
fn carried_scale_tier(path: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else { return Vec::new() };
    doc.get_field("scale_tier").and_then(Value::as_array).map(<[Value]>::to_vec).unwrap_or_default()
}

/// The build-sweep entries already recorded at `path`, if any.
fn carried_build_sweep(path: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else { return Vec::new() };
    doc.get_field("build_sweep").and_then(Value::as_array).map(<[Value]>::to_vec).unwrap_or_default()
}

/// Build-throughput sweep: wave-builds the same semi-synthetic corpus at
/// each explicit thread budget `T ∈ {1, 2, 4, 8, 16, avail} ∩ [1, avail]`
/// and records the wall clock.  The graphs must be byte-identical across
/// the sweep — asserted here on the serialized bundle — so the entries
/// measure exactly one thing: how the wave scheduler converts workers
/// into wall-clock.  Default corpus is 64k objects (`MUST_SCALE_N`
/// overrides).
fn run_build_sweep() -> Vec<BuildEntry> {
    let n = std::env::var("MUST_SCALE_N")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(65_536)
        .max(256);
    let (_, objects, _, embed_secs) = embed_semisynthetic(n);
    eprintln!("[serving] build sweep: corpus ready (embed took {}s)", f4(embed_secs));

    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    let mut thread_counts: Vec<usize> =
        [1usize, 2, 4, 8, 16, avail].into_iter().filter(|&t| t <= avail).collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let weights = Weights::uniform(2);
    let mut entries: Vec<BuildEntry> = Vec::new();
    let mut reference: Option<Vec<u8>> = None;
    for &threads in &thread_counts {
        let t0 = Instant::now();
        let must = Must::build(
            objects.clone(),
            weights.clone(),
            MustBuildOptions {
                gamma: 16,
                recipe: GraphRecipe::Hnsw,
                threads,
                ..Default::default()
            },
        )
        .expect("build-sweep build");
        let build_secs = t0.elapsed().as_secs_f64();

        // Thread-count invariance check: the whole bundle (graph edges,
        // entry point, levels) must not move with the worker budget.
        let dir = must_bench::out_dir();
        let bundle = dir.join(format!("build-sweep-t{threads}.bundle"));
        must_core::persist::save(&must, &bundle).expect("bundle save");
        let bytes = std::fs::read(&bundle).expect("bundle read");
        let _ = std::fs::remove_file(&bundle);
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(
                r, &bytes,
                "wave build is not thread-count invariant: T=1 vs T={threads} bundles differ"
            ),
        }

        let t1_secs = entries.first().map_or(build_secs, |e: &BuildEntry| e.build_secs);
        let e = BuildEntry {
            n_objects: n,
            threads,
            build_secs,
            speedup_vs_t1: t1_secs / build_secs,
        };
        eprintln!(
            "[serving] build threads={:<2} n={} build={}s speedup_vs_t1={:.2}x",
            e.threads,
            e.n_objects,
            f4(e.build_secs),
            e.speedup_vs_t1
        );
        entries.push(e);
    }
    entries
}

/// Replaces the artefact's `build_sweep` field wholesale — the sweep is
/// measured as a unit (speedups are relative to its own T=1 point), so
/// entry-wise merging would mix incomparable baselines.
fn merge_build_sweep(path: &str, entries: &[BuildEntry]) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("`--build-sweep` merges into an existing artefact ({path}: {e}); run the full serving bench first")
    });
    let mut doc: Value = serde_json::from_str(&text).expect("valid artefact JSON");
    let ev = Value::Array(
        entries
            .iter()
            .map(|e| {
                let json = serde_json::to_string_pretty(e).expect("serialisable entry");
                serde_json::from_str(&json).expect("own serialisation parses")
            })
            .collect(),
    );
    let Value::Object(fields) = &mut doc else {
        panic!("artefact root is not a JSON object");
    };
    match fields.iter_mut().find(|(name, _)| name.as_str() == "build_sweep") {
        Some((_, slot)) => *slot = ev,
        None => fields.push(("build_sweep".into(), ev)),
    }
    let json = serde_json::to_string_pretty(&doc).expect("serialisable artefact");
    std::fs::write(path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("merged build sweep into {path}");
}

fn main() {
    let path = std::env::var("MUST_BENCH_PATH").unwrap_or_else(|_| "BENCH_serving.json".into());
    if std::env::args().any(|a| a == "--scale") {
        let entry = run_scale_tier(10, 100);
        merge_scale_entry(&path, &entry);
        return;
    }
    if std::env::args().any(|a| a == "--build-sweep") {
        let entries = run_build_sweep();
        merge_build_sweep(&path, &entries);
        return;
    }

    let scale = must_bench::scale();
    let ds = must_data::catalog::mit_states(scale, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let (k, l) = (10, 100);

    // prepare() learns weights, computes the exact top-k oracle, and
    // builds the fused index — the offline phase.  freeze() is the
    // offline→online handover.
    let setup = prepare(&ds, k, MustBuildOptions::default());
    let queries = setup.queries;
    let ground_truth = setup.ground_truth;
    let weights = setup.weights;
    // Keep the corpus for the shard sweep before freezing the S=1 server.
    let corpus = setup.must.objects().clone();
    let server = MustServer::freeze(setup.must);
    eprintln!(
        "[serving] {} objects, {} queries, {} index",
        server.len(),
        queries.len(),
        server.index().label()
    );

    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    // Sweep the powers of two up to the host's available parallelism —
    // plus the parallelism itself when it is not a power of two — and
    // always include threads=2, so the committed trajectory records
    // whether adding a second worker pays off even on small hosts.
    let mut thread_counts: Vec<usize> = [1usize, 2, 4, 8, 16, avail]
        .into_iter()
        .filter(|&t| t == 1 || t <= avail.max(2))
        .collect();
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let batches = [16usize, 64];

    let mut entries = Vec::new();
    for &threads in &thread_counts {
        for &batch in &batches {
            let e = run_point(&server, &queries, &ground_truth, k, l, threads, batch);
            entries.push(e);
        }
    }
    // Scaling efficiency: QPS_t / (t · QPS_1) at the same batch size.
    let base: Vec<(usize, f64)> = entries
        .iter()
        .filter(|e| e.threads == 1)
        .map(|e| (e.batch, e.qps))
        .collect();
    for e in &mut entries {
        if let Some(&(_, q1)) = base.iter().find(|(b, _)| *b == e.batch) {
            e.scaling_efficiency = e.qps / (e.threads as f64 * q1);
        }
        eprintln!(
            "[serving] threads={:<2} batch={:<3} qps={:<10} p50={}ms p99={}ms recall@10={} scale-eff={:.2}",
            e.threads,
            e.batch,
            f4(e.qps),
            f4(e.p50_ms),
            f4(e.p99_ms),
            f4(e.recall_at_10),
            e.scaling_efficiency
        );
    }

    // ---- Shard sweep: S ∈ {1, 2, 4, 8} at a fixed operating point. ----
    // The sweep measures what sharding buys (parallel build, bounded
    // per-shard memory) and what the scatter-gather costs at query time.
    let (shard_threads, shard_batch) = (thread_counts.last().copied().unwrap_or(1), 64);
    let mut shard_entries = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        if shards > corpus.len() {
            eprintln!("[serving] skipping S={shards}: corpus has only {} objects", corpus.len());
            continue;
        }
        let t0 = Instant::now();
        let sharded = ShardedMust::build(
            corpus.clone(),
            weights.clone(),
            MustBuildOptions::default(),
            ShardSpec::new(shards),
        )
        .expect("shard build");
        let build_secs = t0.elapsed().as_secs_f64();
        let sharded = ShardedServer::freeze(sharded);
        let (qps, p50_ms, p99_ms, recall_at_10) = measure(
            |qs| sharded.search_batch(qs, k, l, shard_threads),
            &queries,
            &ground_truth,
            k,
            shard_batch,
        );
        eprintln!(
            "[serving] shards={shards:<2} threads={shard_threads:<2} batch={shard_batch:<3} build={}s qps={:<10} p50={}ms p99={}ms recall@10={}",
            f4(build_secs),
            f4(qps),
            f4(p50_ms),
            f4(p99_ms),
            f4(recall_at_10)
        );
        shard_entries.push(ShardEntry {
            shards,
            threads: shard_threads,
            batch: shard_batch,
            build_secs,
            build_threads: must_graph::par::build_threads(),
            qps,
            p50_ms,
            p99_ms,
            recall_at_10,
        });
    }

    // ---- Routing sweep: S = 8 clustered shards, r ∈ {1, 2, 4, 8}. -----
    // The selective-routing dial: a clustered assignment groups similar
    // objects per shard, the router scores each query against per-shard
    // summaries under the active ω² weights, and only the top-`r` shards
    // are searched with a per-shard beam that keeps the *total* candidate
    // budget near the single-shard `l`.  r = S is the full-fan-out
    // reference point.
    let routing_shards = 8usize;
    let mut routing = Vec::new();
    if routing_shards <= corpus.len() {
        let clustered = ShardedMust::build(
            corpus.clone(),
            weights.clone(),
            MustBuildOptions::default(),
            ShardSpec::clustered(routing_shards),
        )
        .expect("clustered shard build");
        let clustered = ShardedServer::freeze(clustered);
        for fan_out in [1usize, 2, 4, routing_shards] {
            let l_shard = l.div_ceil(fan_out).max(k);
            let routed = clustered.with_routing(RoutePolicy::with_beam(fan_out, l_shard));
            let (qps, p50_ms, p99_ms, recall_at_10) = measure(
                |qs| routed.search_batch(qs, k, l, shard_threads),
                &queries,
                &ground_truth,
                k,
                shard_batch,
            );
            eprintln!(
                "[serving] routed  S={routing_shards} r={fan_out:<2} l_shard={l_shard:<3} qps={:<10} p50={}ms p99={}ms recall@10={}",
                f4(qps),
                f4(p50_ms),
                f4(p99_ms),
                f4(recall_at_10)
            );
            routing.push(RoutingEntry {
                shards: routing_shards,
                threads: shard_threads,
                batch: shard_batch,
                fan_out,
                l_shard,
                qps,
                p50_ms,
                p99_ms,
                recall_at_10,
            });
        }
    } else {
        eprintln!(
            "[serving] skipping routing sweep: corpus has only {} objects",
            corpus.len()
        );
    }

    // ---- Weight churn: query-time weights vs rebuild-per-switch. ------
    // The stream rotates through a cycle of user weight vectors every Q
    // queries.  The per-query-weight path serves every switch from the
    // same frozen snapshot; the baseline rebuilds and re-freezes the
    // whole engine per switch — what baked-in (prescaled) storage
    // requires.
    let weight_churn = churn_sweep(&server, &corpus, &weights, &queries, k, l, shard_threads);

    // ---- Open loop: fixed arrival rates through the serve runtime. ----
    // Rates are anchored to the measured single-thread closed-loop
    // throughput: well under capacity, near half, and near saturation.
    // Queueing delay shows up here (latency runs enqueue→reply against
    // the virtual schedule) where the closed-loop sweep structurally
    // cannot see it.
    let serial_qps = entries
        .iter()
        .filter(|e| e.threads == 1)
        .map(|e| e.qps)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let open_workers = shard_threads;
    let mut open_loop = Vec::new();
    for frac in [0.3, 0.6, 0.9] {
        let e = open_loop_point(&server, &queries, k, l, open_workers, frac * serial_qps);
        eprintln!(
            "[serving] open-loop workers={} target={} qps achieved={} qps p50={}ms p99={}ms",
            e.workers,
            f4(e.target_qps),
            f4(e.achieved_qps),
            f4(e.p50_ms),
            f4(e.p99_ms)
        );
        open_loop.push(e);
    }

    let artefact = ServingBench {
        bench: "serving".into(),
        dataset: ds.name.clone(),
        index: server.index().label().into(),
        n_objects: server.len(),
        n_queries: queries.len(),
        k,
        l,
        host_threads: avail,
        entries,
        shard_entries,
        routing,
        weight_churn,
        open_loop,
        scale_tier: carried_scale_tier(&path),
        build_sweep: carried_build_sweep(&path),
    };
    let json = serde_json::to_string_pretty(&artefact).expect("serialisable artefact");
    std::fs::write(&path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("wrote {path}");
}
