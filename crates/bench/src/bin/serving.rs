//! Online-serving throughput bench: sweeps worker-thread counts and
//! arrival-batch sizes over a MIT-States-style corpus served by
//! [`must_core::MustServer`], reporting QPS, p50/p99 per-query latency,
//! and Recall@10 against the exact joint-similarity oracle — plus a
//! **shard sweep** (S ∈ {1, 2, 4, 8}) through
//! [`must_core::shard::ShardedServer`]'s scatter-gather path and a
//! **weight-churn sweep**: the query stream switches its user weight
//! vector every Q queries, comparing the `search_batch_weighted`
//! query-time-weighting path against the rebuild-per-switch baseline the
//! prescaled storage used to require.
//!
//! Writes `BENCH_serving.json` at the repository root (override with
//! `MUST_BENCH_PATH`) plus a copy under `EXPERIMENTS-out/`, so the bench
//! trajectory tracks serving performance across PRs.  Scale with
//! `MUST_SCALE` as usual (CI runs a tiny smoke configuration).

use std::time::Instant;

use must_bench::efficiency::prepare;
use must_bench::report::f4;
use must_core::metrics::recall_at;
use must_core::search::{exact_ground_truth, SearchOutcome};
use must_core::server::MustServer;
use must_core::shard::{ShardSpec, ShardedMust, ShardedServer};
use must_core::{Must, MustBuildOptions, MustError};
use must_vector::{MultiQuery, MultiVectorSet, ObjectId, Weights};
use serde::Serialize;

/// One `(threads, batch)` operating point of the single-shard server.
#[derive(Debug, Clone, Serialize)]
struct Entry {
    threads: usize,
    batch: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// One point of the shard sweep (fixed threads × batch, varying S).
#[derive(Debug, Clone, Serialize)]
struct ShardEntry {
    shards: usize,
    threads: usize,
    batch: usize,
    build_secs: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    recall_at_10: f64,
}

/// One point of the weight-churn sweep: the stream switches its user
/// weight vector every `switch_every` queries.
#[derive(Debug, Clone, Serialize)]
struct ChurnEntry {
    switch_every: usize,
    switches: usize,
    threads: usize,
    /// Steady-state QPS: the same workload under one fixed weight vector.
    steady_qps: f64,
    /// QPS of the per-query-weight path (`search_batch_weighted`, no
    /// rebuilds — the weight override rides on the query row).
    churn_qps: f64,
    /// QPS of the rebuild-per-switch baseline (wall clock includes every
    /// `Must::build` + freeze the prescaled storage model would need).
    rebuild_qps: f64,
    /// `churn_qps / steady_qps` — the acceptance pin is >= 0.9.
    churn_over_steady: f64,
    recall_at_10_churn: f64,
    recall_at_10_rebuild: f64,
}

/// The whole artefact.
#[derive(Debug, Clone, Serialize)]
struct ServingBench {
    bench: String,
    dataset: String,
    index: String,
    n_objects: usize,
    n_queries: usize,
    k: usize,
    l: usize,
    entries: Vec<Entry>,
    shard_entries: Vec<ShardEntry>,
    weight_churn: Vec<ChurnEntry>,
}

fn percentile_ms(sorted_secs: &[f64], p: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_secs.len() - 1) as f64).round() as usize;
    sorted_secs[idx] * 1e3
}

/// Drives one operating point through any batch-search entry point and
/// reduces it to throughput, latency percentiles, and recall.
fn measure(
    search_batch: impl Fn(&[MultiQuery]) -> Vec<Result<SearchOutcome, MustError>>,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    batch: usize,
) -> (f64, f64, f64, f64) {
    let mut latencies: Vec<f64> = Vec::with_capacity(queries.len());
    let mut recall_sum = 0.0;
    let t0 = Instant::now();
    for (qs, gts) in queries.chunks(batch).zip(ground_truth.chunks(batch)) {
        for (out, gt) in search_batch(qs).into_iter().zip(gts) {
            let out = out.expect("workload queries are well-formed");
            latencies.push(out.secs);
            let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
            recall_sum += recall_at(&ids, gt, k);
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_unstable_by(f64::total_cmp);
    (
        queries.len() as f64 / wall,
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 99.0),
        recall_sum / queries.len() as f64,
    )
}

fn run_point(
    server: &MustServer,
    queries: &[MultiQuery],
    ground_truth: &[Vec<ObjectId>],
    k: usize,
    l: usize,
    threads: usize,
    batch: usize,
) -> Entry {
    let (qps, p50_ms, p99_ms, recall_at_10) = measure(
        |qs| server.search_batch(qs, k, l, threads),
        queries,
        ground_truth,
        k,
        batch,
    );
    Entry { threads, batch, qps, p50_ms, p99_ms, recall_at_10 }
}

/// Runs the weight-churn sweep: for each switch interval, measure the
/// steady-state QPS (one fixed weight vector), the query-time-weighting
/// churn QPS (same snapshot, `search_batch_weighted` per chunk), and the
/// rebuild-per-switch baseline (a fresh `Must::build` + freeze per
/// chunk), each with Recall@10 against the exact oracle *under the
/// chunk's own weights*.
fn churn_sweep(
    server: &MustServer,
    corpus: &MultiVectorSet,
    default_weights: &Weights,
    queries: &[MultiQuery],
    k: usize,
    l: usize,
    threads: usize,
) -> Vec<ChurnEntry> {
    // The weight cycle: the learned configuration plus two user-defined
    // vectors (Tab. IX style sweeps of omega^2).
    let cycle: Vec<Weights> = vec![
        default_weights.clone(),
        Weights::from_squared(vec![0.8, 0.2]).expect("valid"),
        Weights::from_squared(vec![0.3, 0.7]).expect("valid"),
    ];
    let ground_truths: Vec<Vec<Vec<ObjectId>>> = cycle
        .iter()
        .map(|w| exact_ground_truth(corpus, w, queries, k).expect("valid workload"))
        .collect();

    let mut out = Vec::new();
    // Bound the rebuild count so the baseline stays measurable at any
    // scale: roughly 6 switches over the stream.
    let switch_every = (queries.len() / 6).max(16).min(queries.len().max(1));
    // The first chunk runs under the frozen default — only subsequent
    // chunk boundaries actually switch weights.
    let switches = queries.len().div_ceil(switch_every).saturating_sub(1);

    // Steady state: the whole stream under the default weights.  Both
    // no-rebuild phases take the best of two passes, so a transient
    // load spike on a shared host cannot skew the churn/steady ratio
    // the schema check gates on.
    let steady_qps = (0..2)
        .map(|_| {
            let t0 = Instant::now();
            for qs in queries.chunks(switch_every) {
                for r in server.search_batch(qs, k, l, threads) {
                    r.expect("workload queries are well-formed");
                }
            }
            queries.len() as f64 / t0.elapsed().as_secs_f64()
        })
        .fold(0.0f64, f64::max);

    // Query-time weighting: switch the override per chunk, same snapshot.
    let mut recall_churn = 0.0;
    let mut churn_qps = 0.0f64;
    for _pass in 0..2 {
        recall_churn = 0.0;
        let t0 = Instant::now();
        for (ci, qs) in queries.chunks(switch_every).enumerate() {
            let w = &cycle[ci % cycle.len()];
            let gt = &ground_truths[ci % cycle.len()][ci * switch_every..];
            for (r, gt) in server.search_batch_weighted(qs, w, k, l, threads).into_iter().zip(gt)
            {
                let r = r.expect("workload queries are well-formed");
                let ids: Vec<ObjectId> = r.results.iter().map(|x| x.0).collect();
                recall_churn += recall_at(&ids, gt, k);
            }
        }
        churn_qps = churn_qps.max(queries.len() as f64 / t0.elapsed().as_secs_f64());
    }

    // Rebuild-per-switch baseline: every weight *switch* pays a full
    // offline build + freeze before it can answer its chunk; chunk 0
    // runs under the frozen default, which a prescaled deployment
    // already has.
    let mut recall_rebuild = 0.0;
    let t0 = Instant::now();
    for (ci, qs) in queries.chunks(switch_every).enumerate() {
        let w = &cycle[ci % cycle.len()];
        let gt = &ground_truths[ci % cycle.len()][ci * switch_every..];
        let srv = if ci == 0 {
            server.clone()
        } else {
            MustServer::freeze(
                Must::build(corpus.clone(), w.clone(), MustBuildOptions::default())
                    .expect("rebuild"),
            )
        };
        for (r, gt) in srv.search_batch(qs, k, l, threads).into_iter().zip(gt) {
            let r = r.expect("workload queries are well-formed");
            let ids: Vec<ObjectId> = r.results.iter().map(|x| x.0).collect();
            recall_rebuild += recall_at(&ids, gt, k);
        }
    }
    let rebuild_qps = queries.len() as f64 / t0.elapsed().as_secs_f64();

    let n = queries.len() as f64;
    let e = ChurnEntry {
        switch_every,
        switches,
        threads,
        steady_qps,
        churn_qps,
        rebuild_qps,
        churn_over_steady: churn_qps / steady_qps,
        recall_at_10_churn: recall_churn / n,
        recall_at_10_rebuild: recall_rebuild / n,
    };
    eprintln!(
        "[serving] churn every {}q ({} switches): steady={} qps, per-query-weights={} qps \
         ({:.2}x steady), rebuild-per-switch={} qps, recall@10 churn={} rebuild={}",
        e.switch_every,
        e.switches,
        f4(e.steady_qps),
        f4(e.churn_qps),
        e.churn_over_steady,
        f4(e.rebuild_qps),
        f4(e.recall_at_10_churn),
        f4(e.recall_at_10_rebuild),
    );
    out.push(e);
    out
}

fn main() {
    let scale = must_bench::scale();
    let ds = must_data::catalog::mit_states(scale, must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let (k, l) = (10, 100);

    // prepare() learns weights, computes the exact top-k oracle, and
    // builds the fused index — the offline phase.  freeze() is the
    // offline→online handover.
    let setup = prepare(&ds, k, MustBuildOptions::default());
    let queries = setup.queries;
    let ground_truth = setup.ground_truth;
    let weights = setup.weights;
    // Keep the corpus for the shard sweep before freezing the S=1 server.
    let corpus = setup.must.objects().clone();
    let server = MustServer::freeze(setup.must);
    eprintln!(
        "[serving] {} objects, {} queries, {} index",
        server.len(),
        queries.len(),
        server.index().label()
    );

    let avail = std::thread::available_parallelism().map_or(1, usize::from);
    let mut thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t == 1 || t <= avail.max(2))
        .collect();
    thread_counts.dedup();
    let batches = [16usize, 64];

    let mut entries = Vec::new();
    for &threads in &thread_counts {
        for &batch in &batches {
            let e = run_point(&server, &queries, &ground_truth, k, l, threads, batch);
            eprintln!(
                "[serving] threads={threads:<2} batch={batch:<3} qps={:<10} p50={}ms p99={}ms recall@10={}",
                f4(e.qps),
                f4(e.p50_ms),
                f4(e.p99_ms),
                f4(e.recall_at_10)
            );
            entries.push(e);
        }
    }

    // ---- Shard sweep: S ∈ {1, 2, 4, 8} at a fixed operating point. ----
    // The sweep measures what sharding buys (parallel build, bounded
    // per-shard memory) and what the scatter-gather costs at query time.
    let (shard_threads, shard_batch) = (thread_counts.last().copied().unwrap_or(1), 64);
    let mut shard_entries = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        if shards > corpus.len() {
            eprintln!("[serving] skipping S={shards}: corpus has only {} objects", corpus.len());
            continue;
        }
        let t0 = Instant::now();
        let sharded = ShardedMust::build(
            corpus.clone(),
            weights.clone(),
            MustBuildOptions::default(),
            ShardSpec::new(shards),
        )
        .expect("shard build");
        let build_secs = t0.elapsed().as_secs_f64();
        let sharded = ShardedServer::freeze(sharded);
        let (qps, p50_ms, p99_ms, recall_at_10) = measure(
            |qs| sharded.search_batch(qs, k, l, shard_threads),
            &queries,
            &ground_truth,
            k,
            shard_batch,
        );
        eprintln!(
            "[serving] shards={shards:<2} threads={shard_threads:<2} batch={shard_batch:<3} build={}s qps={:<10} p50={}ms p99={}ms recall@10={}",
            f4(build_secs),
            f4(qps),
            f4(p50_ms),
            f4(p99_ms),
            f4(recall_at_10)
        );
        shard_entries.push(ShardEntry {
            shards,
            threads: shard_threads,
            batch: shard_batch,
            build_secs,
            qps,
            p50_ms,
            p99_ms,
            recall_at_10,
        });
    }

    // ---- Weight churn: query-time weights vs rebuild-per-switch. ------
    // The stream rotates through a cycle of user weight vectors every Q
    // queries.  The per-query-weight path serves every switch from the
    // same frozen snapshot; the baseline rebuilds and re-freezes the
    // whole engine per switch — what baked-in (prescaled) storage
    // requires.
    let weight_churn = churn_sweep(&server, &corpus, &weights, &queries, k, l, shard_threads);

    let artefact = ServingBench {
        bench: "serving".into(),
        dataset: ds.name.clone(),
        index: server.index().label().into(),
        n_objects: server.len(),
        n_queries: queries.len(),
        k,
        l,
        entries,
        shard_entries,
        weight_churn,
    };
    let json = serde_json::to_string_pretty(&artefact).expect("serialisable artefact");
    let path = std::env::var("MUST_BENCH_PATH").unwrap_or_else(|_| "BENCH_serving.json".into());
    std::fs::write(&path, &json).expect("can write bench artefact");
    let _ = std::fs::write(must_bench::out_dir().join("serving.json"), &json);
    println!("wrote {path}");
}
