//! Section VIII-F — learned-weight generalisation: a query whose text
//! describes something *not* in the reference image (Case 2: "change
//! state to X") and one whose text describes what *is* in the image
//! (Case 1: "keep the current state") are executed with the *same* fixed
//! learned weights; the weights generalise because they encode modality
//! importance, not content.

use must_bench::accuracy::prepare;
use must_bench::report::{f4, Table};
use must_core::search::brute_force_search;
use must_core::weights::WeightLearnConfig;
use must_encoders::{Composer, ComposerKind, EncoderConfig, Latent, TargetEncoding, UnimodalKind};
use must_vector::{JointDistance, MultiQuery, Weights};

fn main() {
    let ds = must_data::catalog::mit_states(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let prepared = prepare(&ds, &config, &registry);
    let learned = prepared.learn(&WeightLearnConfig::default());
    // One binding over the unscaled storage; the learned configuration is
    // a query-side rebind, not an engine rebuild (the same seam
    // `search_weighted` serves online).
    let joint = JointDistance::new(&prepared.embedded.objects, Weights::uniform(2))
        .unwrap()
        .with_query_weights(learned.weights.clone())
        .unwrap();
    println!("fixed learned weights^2 = {:?}\n", learned.weights.squared());

    // Rebuild Case-1 variants of evaluation queries: text describes the
    // reference's *own* attribute instead of a new one.
    let composer = registry.composer(ComposerKind::Clip);
    let lstm = registry.unimodal(UnimodalKind::Lstm);
    use must_encoders::Embedder;

    let mut table = Table::new(
        "Sec. VIII-F",
        "Recall@1 with the same fixed weights on both query cases",
        &["Query case", "Recall@1(1)", "queries"],
    );
    let (mut recall2, mut recall1, mut n) = (0.0f64, 0.0f64, 0usize);
    for (qi, q) in ds.queries.iter().enumerate().skip(prepared.train.len()).take(300) {
        let eq = &prepared.embedded.queries[qi];
        // Case 2 (original): text asks for a *different* attribute.
        let out2 = brute_force_search(&joint, &eq.query, 1, true).unwrap();
        if out2.results.first().map(|r| r.0) == Some(q.anchor) {
            recall2 += 1.0;
        }
        // Case 1: text re-describes the reference's own state; the correct
        // answer is then the object matching (class, reference attr).
        let reference = q.latents[0].as_ref().unwrap().clone();
        let space = ds.space;
        let ref_attr_desc = Latent::descriptive(space.class_dims, reference.attr_part(&space));
        let slot0 = composer.compose(&[&reference, &ref_attr_desc]);
        let slot1 = lstm.embed(&ref_attr_desc);
        let q1 = MultiQuery::full(vec![slot0, slot1]);
        let out1 = brute_force_search(&joint, &q1, 1, true).unwrap();
        // Ground truth for case 1: nearest object with the reference's
        // class; accept any object of the anchor's class.
        if let Some((top, _)) = out1.results.first() {
            if prepared.embedded.labels[*top as usize].class == q.want.class {
                recall1 += 1.0;
            }
        }
        n += 1;
    }
    let n_f = n.max(1) as f64;
    table.push_row(vec![
        "Case 2: text describes a new state".into(),
        f4(recall2 / n_f),
        n.to_string(),
    ]);
    table.push_row(vec![
        "Case 1: text describes the present state (class match)".into(),
        f4(recall1 / n_f),
        n.to_string(),
    ]);
    table.emit();
}
