//! Tab. IX — effect of user-defined weights on MIT-States: increasing
//! `omega_0^2` makes the returned objects more similar to the query in
//! modality 0, at the cost of modality 1 (the customisation property of
//! Fig. 4(g), Option 2).
//!
//! Since the query-time-weighting refactor the whole sweep runs over
//! **one** joint-distance binding: each weight setting is a
//! [`JointDistance::with_query_weights`] rebind of the same unscaled
//! storage — no per-setting engine rebuild.

use must_bench::accuracy::prepare;
use must_bench::report::{f4, Table};
use must_core::search::brute_force_search;
use must_encoders::{ComposerKind, EncoderConfig, TargetEncoding, UnimodalKind};
use must_vector::{kernels, JointDistance, Weights};

fn main() {
    let ds = must_data::catalog::mit_states(must_bench::scale(), must_bench::DATASET_SEED);
    must_bench::banner(&ds);
    let registry = must_bench::registry();
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let prepared = prepare(&ds, &config, &registry);
    let objects = &prepared.embedded.objects;

    let mut table = Table::new(
        "Tab. IX",
        "Effect of different user-defined weights (q = query, r = returned)",
        &["w0^2", "w1^2", "IP(q0, r0)", "IP(q1, r1)"],
    );
    let base = JointDistance::new(objects, Weights::uniform(2)).unwrap();
    for w0_sq in [0.5f32, 0.6, 0.7, 0.8, 0.9] {
        let w1_sq = 1.0 - w0_sq;
        let weights = Weights::from_squared(vec![w0_sq, w1_sq]).unwrap();
        let joint = base.with_query_weights(weights).unwrap();
        let (mut sim0, mut sim1, mut n) = (0.0f64, 0.0f64, 0usize);
        for q in prepared.eval_queries().take(300) {
            let out = brute_force_search(&joint, &q.query, 1, true).expect("valid query");
            let Some(&(top, _)) = out.results.first() else { continue };
            let (Some(s0), Some(s1)) = (q.query.slot(0), q.query.slot(1)) else { continue };
            sim0 += kernels::ip(s0, objects.modality(0).get(top)) as f64;
            sim1 += kernels::ip(s1, objects.modality(1).get(top)) as f64;
            n += 1;
        }
        let n = n.max(1) as f64;
        table.push_row(vec![
            format!("{w0_sq:.1}"),
            format!("{w1_sq:.1}"),
            f4(sim0 / n),
            f4(sim1 / n),
        ]);
    }
    table.emit();
}
