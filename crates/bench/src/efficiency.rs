//! Shared efficiency-experiment machinery for Figs. 6–8, 10 and Tabs. VII,
//! XI, XII: real indexes, single-threaded search, QPS vs recall sweeps.

use std::time::Instant;

use must_core::baselines::{BaselineOptions, MultiStreamedRetrieval};
use must_core::metrics::recall_at;
use must_core::search::exact_ground_truth;
use must_core::weights::WeightLearnConfig;
use must_core::{Must, MustBuildOptions};
use must_data::embed::embed_dataset;
use must_data::LatentDataset;
use must_encoders::{EncoderConfig, TargetEncoding, UnimodalKind};
use must_graph::search::SearchScratch;
use must_graph::SearchParams;
use must_vector::{MultiQuery, ObjectId, Weights};

/// The default encoder configuration for semi-synthetic datasets
/// (multi-vector: ResNet50 target + LSTM text, as in the paper's
/// million-scale runs).
#[must_use]
pub fn semisynthetic_config() -> EncoderConfig {
    EncoderConfig::new(
        TargetEncoding::Independent(UnimodalKind::ResNet50),
        vec![UnimodalKind::Lstm],
    )
}

/// A fully prepared efficiency setup: built MUST index, built MR indexes,
/// evaluation queries with exact top-`k` ground truth under MUST's weights.
pub struct EffSetup {
    /// Built MUST instance.
    pub must: Must,
    /// Evaluation queries.
    pub queries: Vec<MultiQuery>,
    /// Exact top-`k` ground truth per query.
    pub ground_truth: Vec<Vec<ObjectId>>,
    /// `k` the ground truth was computed for.
    pub k: usize,
    /// Weights in force.
    pub weights: Weights,
}

/// Prepares an efficiency setup from a semi-synthetic latent dataset.
///
/// Weights are learned on a training slice of the workload; ground truth
/// is the exact joint top-`k` under those weights (the protocol of
/// Figs. 6–8).
#[must_use]
pub fn prepare(dataset: &LatentDataset, k: usize, build: MustBuildOptions) -> EffSetup {
    let registry = crate::registry();
    let config = semisynthetic_config();
    let embedded = embed_dataset(dataset, &config, &registry);
    let n_q = embedded.queries.len();
    let n_train = (n_q / 2).clamp(1, 256);

    let anchors: Vec<(&MultiQuery, ObjectId)> = embedded.queries[..n_train]
        .iter()
        .map(|q| (&q.query, q.anchor))
        .collect();
    let learned = Must::learn_weights(
        &embedded.objects,
        &anchors,
        &WeightLearnConfig { epochs: 150, ..Default::default() },
    );
    let weights = learned.weights;

    let queries: Vec<MultiQuery> =
        embedded.queries[n_train..].iter().map(|q| q.query.clone()).collect();
    let ground_truth =
        exact_ground_truth(&embedded.objects, &weights, &queries, k).expect("valid workload");

    let must = Must::build(embedded.objects, weights.clone(), build).expect("build");
    EffSetup { must, queries, ground_truth, k, weights }
}

/// One point of a QPS–recall curve.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Pool size (or candidate size) that produced the point.
    pub l: usize,
    /// Mean `Recall@k(k)`.
    pub recall: f64,
    /// Queries per second (single-threaded).
    pub qps: f64,
}

/// Sweeps pool size `l` for MUST's joint search (Fig. 6 "MUST" curve).
#[must_use]
pub fn must_sweep(setup: &EffSetup, ls: &[usize]) -> Vec<SweepPoint> {
    let mut searcher = setup.must.searcher();
    ls.iter()
        .map(|&l| {
            let t0 = Instant::now();
            let mut recall_sum = 0.0;
            for (q, gt) in setup.queries.iter().zip(&setup.ground_truth) {
                let out = searcher
                    .search_with_params(q, SearchParams::new(setup.k, l.max(setup.k)))
                    .expect("valid query");
                let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
                recall_sum += recall_at(&ids, gt, setup.k);
            }
            let secs = t0.elapsed().as_secs_f64();
            SweepPoint {
                l,
                recall: recall_sum / setup.queries.len() as f64,
                qps: setup.queries.len() as f64 / secs,
            }
        })
        .collect()
}

/// The `MUST--` brute-force point (recall 1.0 by construction).
#[must_use]
pub fn must_brute_point(setup: &EffSetup) -> SweepPoint {
    let t0 = Instant::now();
    let mut recall_sum = 0.0;
    for (q, gt) in setup.queries.iter().zip(&setup.ground_truth) {
        let out = setup.must.brute_force(q, setup.k).expect("valid query");
        let ids: Vec<ObjectId> = out.results.iter().map(|r| r.0).collect();
        recall_sum += recall_at(&ids, gt, setup.k);
    }
    let secs = t0.elapsed().as_secs_f64();
    SweepPoint {
        l: 0,
        recall: recall_sum / setup.queries.len() as f64,
        qps: setup.queries.len() as f64 / secs,
    }
}

/// Builds MR over the same corpus (per-modality indexes).
#[must_use]
pub fn build_mr<'a>(setup: &'a EffSetup, opts: BaselineOptions) -> MultiStreamedRetrieval<'a> {
    MultiStreamedRetrieval::build(setup.must.objects(), opts).expect("MR build")
}

/// Sweeps MR's per-modality candidate size (Fig. 6 "MR" curve).
#[must_use]
pub fn mr_sweep(
    setup: &EffSetup,
    mr: &MultiStreamedRetrieval<'_>,
    candidate_sizes: &[usize],
) -> Vec<SweepPoint> {
    let mut visited = SearchScratch::default();
    candidate_sizes
        .iter()
        .map(|&c| {
            let t0 = Instant::now();
            let mut recall_sum = 0.0;
            for (q, gt) in setup.queries.iter().zip(&setup.ground_truth) {
                let out = mr.search(q, setup.k, c, &mut visited);
                recall_sum += recall_at(&out.results, gt, setup.k);
            }
            let secs = t0.elapsed().as_secs_f64();
            SweepPoint {
                l: c,
                recall: recall_sum / setup.queries.len() as f64,
                qps: setup.queries.len() as f64 / secs,
            }
        })
        .collect()
}

/// The `MR--` brute-force point.
#[must_use]
pub fn mr_brute_point(
    setup: &EffSetup,
    mr: &MultiStreamedRetrieval<'_>,
    candidates: usize,
) -> SweepPoint {
    let t0 = Instant::now();
    let mut recall_sum = 0.0;
    for (q, gt) in setup.queries.iter().zip(&setup.ground_truth) {
        let out = mr.brute_force_search(q, setup.k, candidates);
        recall_sum += recall_at(&out.results, gt, setup.k);
    }
    let secs = t0.elapsed().as_secs_f64();
    SweepPoint {
        l: candidates,
        recall: recall_sum / setup.queries.len() as f64,
        qps: setup.queries.len() as f64 / secs,
    }
}

/// Converts sweep points to `(recall, qps)` series points.
#[must_use]
pub fn to_series(points: &[SweepPoint]) -> Vec<(f64, f64)> {
    points.iter().map(|p| (p.recall, p.qps)).collect()
}

/// Default pool-size sweep for MUST curves.
pub const MUST_LS: &[usize] = &[10, 20, 40, 80, 160, 320, 640, 1280];

/// Default candidate-size sweep for MR curves.
pub const MR_LS: &[usize] = &[10, 30, 100, 300, 1000, 3000];
