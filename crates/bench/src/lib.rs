//! Experiment harness regenerating every table and figure of the MUST
//! paper's evaluation (Section VIII + appendices).
//!
//! Each `src/bin/*.rs` binary reproduces one table or figure; this library
//! holds the shared machinery: scaled dataset construction, framework
//! runners (JE / MR / MUST), QPS–recall sweeps, and table/series reporting
//! with JSON artefacts under `EXPERIMENTS-out/`.
//!
//! Scale: dataset sizes default to the values in `must-data::catalog`
//! (reduced from the paper's cardinalities per DESIGN.md §1) and are
//! multiplied by the `MUST_SCALE` environment variable when set.

//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate DAG
//! and a one-paragraph tour of every crate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod efficiency;
pub mod report;

use must_data::LatentDataset;
use must_encoders::{EncoderRegistry, LatentSpace};

/// Global scale multiplier (`MUST_SCALE`, default 1.0).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("MUST_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(1.0)
}

/// Artefact output directory (`EXPERIMENTS-out/`, created on demand).
#[must_use]
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::env::var("MUST_OUT_DIR").unwrap_or_else(|_| "EXPERIMENTS-out".into());
    let path = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("can create output dir");
    path
}

/// The shared dataset seed for all experiments (reproducibility).
pub const DATASET_SEED: u64 = 20_240_312;

/// A fresh encoder registry bound to the experiment seed.
#[must_use]
pub fn registry() -> EncoderRegistry {
    EncoderRegistry::new(LatentSpace::DEFAULT, DATASET_SEED)
}

/// Prints the dataset stats banner (the Tab. II analogue for this run).
pub fn banner(ds: &LatentDataset) {
    eprintln!("[dataset] {}", ds.stats_row());
}
