//! Table and series reporting: aligned text to stdout, JSON artefacts to
//! `EXPERIMENTS-out/`.

use serde::Serialize;

/// A printable experiment table (one paper table).
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table id, e.g. "Tab. III".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `<out_dir>/<slug>.json` + `.txt`.
    pub fn emit(&self) {
        let text = self.render();
        println!("{text}");
        let slug = self
            .id
            .to_lowercase()
            .replace(['.', ' '], "_")
            .replace("__", "_");
        let dir = crate::out_dir();
        let _ = std::fs::write(dir.join(format!("{slug}.txt")), &text);
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(dir.join(format!("{slug}.json")), json);
        }
    }
}

/// One curve of a figure: named `(x, y)` points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve label (e.g. "MUST", "MR--").
    pub label: String,
    /// Points as `(x, y)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// A figure: several series over named axes.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure id, e.g. "Fig. 6a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds one curve.
    pub fn push_series(&mut self, label: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series { label: label.into(), points });
    }

    /// Renders a text form: one block per series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {}: {} ==  [x = {}, y = {}]\n",
            self.id, self.title, self.x_label, self.y_label
        );
        for s in &self.series {
            out.push_str(&format!("-- {}\n", s.label));
            for (x, y) in &s.points {
                out.push_str(&format!("   {x:>12.4}  {y:>14.4}\n"));
            }
        }
        out
    }

    /// Prints to stdout and writes artefacts.
    pub fn emit(&self) {
        let text = self.render();
        println!("{text}");
        let slug = self
            .id
            .to_lowercase()
            .replace(['.', ' '], "_")
            .replace("__", "_");
        let dir = crate::out_dir();
        let _ = std::fs::write(dir.join(format!("{slug}.txt")), &text);
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(dir.join(format!("{slug}.json")), json);
        }
    }
}

/// Formats a float with 4 decimals (the paper's table precision).
#[must_use]
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// The `p`-th percentile of an **ascending-sorted** latency sample, in
/// milliseconds, by the **ceiling-rank** rule: the smallest sample whose
/// cumulative share is `>= p%` — index `ceil(p/100 * n) - 1`.  Rounding
/// the rank to *nearest* instead (the classic off-by-one) can select the
/// sample *below* the true rank on small `n` — e.g. p99 of 101 samples
/// picking index 99, silently under-reporting the tail — and a tail gate
/// fed by an optimistic p99 never fires.
#[must_use]
pub fn percentile_ms(sorted_secs: &[f64], p: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let n = sorted_secs.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted_secs[rank.clamp(1, n) - 1] * 1e3
}

/// Formats seconds with 1 decimal.
#[must_use]
pub fn s1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Tab. T", "test", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.0".into()]);
        t.push_row(vec!["longer-name".into(), "2.0".into()]);
        let r = t.render();
        assert!(r.contains("Tab. T"));
        assert!(r.contains("longer-name"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_misshaped_rows() {
        let mut t = Table::new("T", "t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn percentile_uses_ceiling_rank_on_small_samples() {
        // Samples 1s..=n s, already ascending — whole-number seconds keep
        // the ×1e3 ms conversion exact, so assert_eq! on f64 is safe.
        let sample = |n: usize| -> Vec<f64> { (1..=n).map(|i| i as f64).collect() };
        // n=1: every percentile is the only sample.
        assert_eq!(percentile_ms(&sample(1), 50.0), 1000.0);
        assert_eq!(percentile_ms(&sample(1), 99.0), 1000.0);
        // n=2: p50 is the first sample (ceil(1.0)=1), p99 the second.
        assert_eq!(percentile_ms(&sample(2), 50.0), 1000.0);
        assert_eq!(percentile_ms(&sample(2), 99.0), 2000.0);
        // n=10: p99 must be the maximum (ceil(9.9)=10), where nearest-rank
        // over n-1 would have picked index 9 too — but p90 shows the
        // boundary: ceil(9.0)=9 → the 9th sample.
        assert_eq!(percentile_ms(&sample(10), 99.0), 10_000.0);
        assert_eq!(percentile_ms(&sample(10), 90.0), 9000.0);
        // n=100: p99 is the 99th sample, p100 the maximum.
        assert_eq!(percentile_ms(&sample(100), 99.0), 99_000.0);
        assert_eq!(percentile_ms(&sample(100), 100.0), 100_000.0);
        // n=101: ceil(99.99) = 100 → the 100th sample.
        assert_eq!(percentile_ms(&sample(101), 99.0), 100_000.0);
        // n=67 is where the old `round(p/100 * (n-1))` rule under-reported:
        // round(0.99 * 66) = 65 picked the 66th sample, one *below* the
        // true rank ceil(0.99 * 67) = 67 — the tail sample a p99 gate
        // exists to see.
        assert_eq!(percentile_ms(&sample(67), 99.0), 67_000.0);
        // Empty samples report zero rather than panicking.
        assert_eq!(percentile_ms(&[], 99.0), 0.0);
    }

    #[test]
    fn figure_renders_series() {
        let mut f = Figure::new("Fig. F", "test", "x", "y");
        f.push_series("MUST", vec![(0.5, 100.0), (0.9, 10.0)]);
        let r = f.render();
        assert!(r.contains("MUST"));
        assert!(r.contains("0.5"));
    }
}
