//! Table and series reporting: aligned text to stdout, JSON artefacts to
//! `EXPERIMENTS-out/`.

use serde::Serialize;

/// A printable experiment table (one paper table).
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table id, e.g. "Tab. III".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = format!("== {}: {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `<out_dir>/<slug>.json` + `.txt`.
    pub fn emit(&self) {
        let text = self.render();
        println!("{text}");
        let slug = self
            .id
            .to_lowercase()
            .replace(['.', ' '], "_")
            .replace("__", "_");
        let dir = crate::out_dir();
        let _ = std::fs::write(dir.join(format!("{slug}.txt")), &text);
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(dir.join(format!("{slug}.json")), json);
        }
    }
}

/// One curve of a figure: named `(x, y)` points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve label (e.g. "MUST", "MR--").
    pub label: String,
    /// Points as `(x, y)` pairs.
    pub points: Vec<(f64, f64)>,
}

/// A figure: several series over named axes.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Figure id, e.g. "Fig. 6a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds one curve.
    pub fn push_series(&mut self, label: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series { label: label.into(), points });
    }

    /// Renders a text form: one block per series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {}: {} ==  [x = {}, y = {}]\n",
            self.id, self.title, self.x_label, self.y_label
        );
        for s in &self.series {
            out.push_str(&format!("-- {}\n", s.label));
            for (x, y) in &s.points {
                out.push_str(&format!("   {x:>12.4}  {y:>14.4}\n"));
            }
        }
        out
    }

    /// Prints to stdout and writes artefacts.
    pub fn emit(&self) {
        let text = self.render();
        println!("{text}");
        let slug = self
            .id
            .to_lowercase()
            .replace(['.', ' '], "_")
            .replace("__", "_");
        let dir = crate::out_dir();
        let _ = std::fs::write(dir.join(format!("{slug}.txt")), &text);
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(dir.join(format!("{slug}.json")), json);
        }
    }
}

/// Formats a float with 4 decimals (the paper's table precision).
#[must_use]
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats seconds with 1 decimal.
#[must_use]
pub fn s1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Tab. T", "test", &["name", "value"]);
        t.push_row(vec!["a".into(), "1.0".into()]);
        t.push_row(vec!["longer-name".into(), "2.0".into()]);
        let r = t.render();
        assert!(r.contains("Tab. T"));
        assert!(r.contains("longer-name"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_misshaped_rows() {
        let mut t = Table::new("T", "t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn figure_renders_series() {
        let mut f = Figure::new("Fig. F", "test", "x", "y");
        f.push_series("MUST", vec![(0.5, 100.0), (0.9, 10.0)]);
        let r = f.render();
        assert!(r.contains("MUST"));
        assert!(r.contains("0.5"));
    }
}
