//! Shared accuracy-experiment machinery for Tabs. III–VI, VIII–X,
//! XIX–XXI: embed a latent dataset under an encoder configuration, learn
//! weights on a training split, and evaluate each framework's recall and
//! SME on the evaluation split.
//!
//! Accuracy tables use exact (brute-force) search for every framework:
//! they measure the *fusion* quality of each framework, independent of
//! index approximation (the paper's index error at the operating points of
//! Tabs. III–VI is negligible; index effects are measured separately in
//! Figs. 6–10).

use must_core::baselines::merge_candidates;
use must_core::metrics::{recall_at, sme};
use must_core::search::brute_force_search;
use must_core::weights::{LearnedWeights, WeightLearnConfig};
use must_core::Must;
use must_data::embed::{embed_dataset, EmbeddedDataset, EmbeddedQuery};
use must_data::LatentDataset;
use must_encoders::{EncoderConfig, EncoderRegistry};
use must_vector::{JointDistance, MultiQuery, ObjectId, Weights};

/// The three frameworks of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framework {
    /// Joint Embedding (single composition vector over the target index).
    Je,
    /// Multi-streamed Retrieval (per-modality search + merge).
    Mr,
    /// The MUST framework (weighted joint similarity).
    Must,
}

impl Framework {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Je => "JE",
            Self::Mr => "MR",
            Self::Must => "MUST",
        }
    }
}

/// A dataset embedded under one encoder configuration, with a train/eval
/// query split.
pub struct Prepared {
    /// The embedded corpus and workload.
    pub embedded: EmbeddedDataset,
    /// Indices of training queries (weight-learning anchors).
    pub train: Vec<usize>,
    /// Indices of evaluation queries.
    pub eval: Vec<usize>,
}

/// Embeds and splits (first 30 % of queries, capped at 512, train).
pub fn prepare(
    dataset: &LatentDataset,
    config: &EncoderConfig,
    registry: &EncoderRegistry,
) -> Prepared {
    let embedded = embed_dataset(dataset, config, registry);
    let n_q = embedded.queries.len();
    let n_train = (n_q * 3 / 10).clamp(1.min(n_q), 512);
    Prepared {
        embedded,
        train: (0..n_train).collect(),
        eval: (n_train..n_q).collect(),
    }
}

impl Prepared {
    /// Weight-learning anchors from the training split.
    #[must_use]
    pub fn anchors(&self) -> Vec<(&MultiQuery, ObjectId)> {
        self.train
            .iter()
            .map(|&i| {
                let q = &self.embedded.queries[i];
                (&q.query, q.anchor)
            })
            .collect()
    }

    /// Evaluation queries.
    pub fn eval_queries(&self) -> impl Iterator<Item = &EmbeddedQuery> {
        self.eval.iter().map(|&i| &self.embedded.queries[i])
    }

    /// Learns weights on the training anchors.
    #[must_use]
    pub fn learn(&self, config: &WeightLearnConfig) -> LearnedWeights {
        Must::learn_weights(&self.embedded.objects, &self.anchors(), config)
    }
}

/// Result of one accuracy run.
#[derive(Debug, Clone)]
pub struct AccuracyRun {
    /// Mean `Recall@k(k')` per requested `k`.
    pub recalls: Vec<f64>,
    /// Mean SME of the top-1 result.
    pub sme: f64,
    /// Weights in force (MUST only).
    pub weights: Option<Weights>,
}

fn eval_results<F>(prepared: &Prepared, ks: &[usize], mut run_query: F) -> AccuracyRun
where
    F: FnMut(&EmbeddedQuery) -> Vec<ObjectId>,
{
    let max_k = ks.iter().copied().max().unwrap_or(1);
    let mut recall_sums = vec![0.0f64; ks.len()];
    let mut sme_sum = 0.0f64;
    let mut n = 0usize;
    for q in prepared.eval_queries() {
        let results = run_query(q);
        debug_assert!(results.len() <= max_k.max(results.len()));
        for (slot, &k) in recall_sums.iter_mut().zip(ks) {
            *slot += recall_at(&results, &q.ground_truth, k);
        }
        if let (Some(&top), Some(&truth)) = (results.first(), q.ground_truth.first()) {
            sme_sum += sme(&prepared.embedded.objects, truth, top);
        } else {
            sme_sum += 1.0;
        }
        n += 1;
    }
    let n = n.max(1) as f64;
    AccuracyRun {
        recalls: recall_sums.into_iter().map(|s| s / n).collect(),
        sme: sme_sum / n,
        weights: None,
    }
}

/// Runs the JE framework (exact search over the target modality with the
/// composed slot-0 vector).
#[must_use]
pub fn run_je(prepared: &Prepared, ks: &[usize]) -> AccuracyRun {
    let max_k = ks.iter().copied().max().unwrap_or(1);
    let target = prepared.embedded.objects.modality(0);
    eval_results(prepared, ks, |q| {
        let slot = q.query.slot(0).expect("JE rows use composed configs");
        target
            .brute_force_top_k(slot, max_k)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    })
}

/// Runs the MR framework (exact per-modality top-`l_candidates` + merge).
#[must_use]
pub fn run_mr(prepared: &Prepared, ks: &[usize], l_candidates: usize) -> AccuracyRun {
    let max_k = ks.iter().copied().max().unwrap_or(1);
    let objects = &prepared.embedded.objects;
    eval_results(prepared, ks, |q| {
        let mut per_modality = Vec::new();
        for mi in 0..objects.num_modalities() {
            if let Some(slot) = q.query.slot(mi) {
                per_modality.push(objects.modality(mi).brute_force_top_k(slot, l_candidates));
            }
        }
        merge_candidates(&per_modality, max_k).0
    })
}

/// Runs the MUST framework under `weights` (exact joint search).
#[must_use]
pub fn run_must(prepared: &Prepared, ks: &[usize], weights: &Weights) -> AccuracyRun {
    let max_k = ks.iter().copied().max().unwrap_or(1);
    let joint = JointDistance::new(&prepared.embedded.objects, weights.clone())
        .expect("weights cover all modalities");
    let mut run = eval_results(prepared, ks, |q| {
        brute_force_search(&joint, &q.query, max_k, true)
            .expect("valid query")
            .results
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    });
    run.weights = Some(weights.clone());
    run
}

/// Runs MUST end-to-end: learn weights then evaluate.
#[must_use]
pub fn run_must_learned(
    prepared: &Prepared,
    ks: &[usize],
    learn_config: &WeightLearnConfig,
) -> AccuracyRun {
    let learned = prepared.learn(learn_config);
    run_must(prepared, ks, &learned.weights)
}

/// One row spec of an accuracy table: framework + encoder configuration.
pub struct RowSpec {
    /// Framework to run.
    pub framework: Framework,
    /// Encoder configuration.
    pub config: EncoderConfig,
    /// Row label override (JE rows show the composer alone).
    pub label: String,
}

impl RowSpec {
    /// Creates a row with the default label.
    #[must_use]
    pub fn new(framework: Framework, config: EncoderConfig) -> Self {
        let label = match framework {
            Framework::Je => match config.target {
                must_encoders::TargetEncoding::Composed(c) => c.label().to_string(),
                must_encoders::TargetEncoding::Independent(k) => k.label().to_string(),
            },
            _ => config.label(),
        };
        Self { framework, config, label }
    }
}

/// Runs a full accuracy table (Tabs. III–VI): one row per
/// framework × encoder configuration, columns `Recall@k(1)` per `k` plus
/// SME.  Returns the rendered table and the learned MUST weights per row
/// (for Tabs. XIII–XVIII).
#[allow(clippy::too_many_arguments)] // experiment descriptor, mirrors the paper's table axes
pub fn accuracy_table(
    id: &str,
    title: &str,
    dataset: &LatentDataset,
    rows: &[RowSpec],
    ks: &[usize],
    registry: &EncoderRegistry,
    mr_candidates: usize,
    learn_config: &WeightLearnConfig,
) -> (crate::report::Table, Vec<(String, Option<Weights>)>) {
    let mut headers: Vec<String> = vec!["Framework".into(), "Encoder".into()];
    headers.extend(ks.iter().map(|k| format!("Recall@{k}(1)")));
    headers.push("SME".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = crate::report::Table::new(id, title, &header_refs);
    let mut learned_weights = Vec::new();
    for row in rows {
        let prepared = prepare(dataset, &row.config, registry);
        let run = match row.framework {
            Framework::Je => run_je(&prepared, ks),
            Framework::Mr => run_mr(&prepared, ks, mr_candidates),
            Framework::Must => run_must_learned(&prepared, ks, learn_config),
        };
        let mut cells = vec![row.framework.label().to_string(), row.label.clone()];
        cells.extend(run.recalls.iter().map(|r| crate::report::f4(*r)));
        cells.push(crate::report::f4(run.sme));
        table.push_row(cells);
        learned_weights.push((row.label.clone(), run.weights));
    }
    (table, learned_weights)
}

/// Evaluates a single-modality workload: queries masked to supply only
/// modality `modality` (Tabs. X, XIX, XX).
#[must_use]
pub fn run_single_modality(prepared: &Prepared, ks: &[usize], modality: usize) -> AccuracyRun {
    let max_k = ks.iter().copied().max().unwrap_or(1);
    let objects = &prepared.embedded.objects;
    eval_results(prepared, ks, |q| {
        match q.query.slot(modality) {
            Some(slot) => objects
                .modality(modality)
                .brute_force_top_k(slot, max_k)
                .into_iter()
                .map(|(id, _)| id)
                .collect(),
            None => Vec::new(),
        }
    })
}
