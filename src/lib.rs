//! # must — Multimodal Search of Target Modality
//!
//! Facade crate re-exporting the whole MUST workspace (a from-scratch
//! reproduction of "MUST: An Effective and Scalable Framework for
//! Multimodal Search of Target Modality", ICDE 2024):
//!
//! * [`vector`] — vector storage, similarity kernels, multi-vector
//!   representation, weighted joint similarity (Lemmas 1 & 4).
//! * [`encoders`] — simulated unimodal/multimodal encoders behind the
//!   pluggable `Embedder`/`Composer` traits.
//! * [`data`] — synthetic multimodal dataset generators with MSTM query
//!   workloads and ground truth.
//! * [`graph`] — the component-based proximity-graph pipeline
//!   (Algorithm 1) and the KGraph/NSG/NSSG/Vamana/HCNNG/HNSW backends.
//! * [`core`] — the MUST framework itself: weight learning, fused index,
//!   joint search (Algorithm 2), the MR/JE baselines, persistence, and
//!   the single-shard + sharded scatter-gather serving layers.
//!
//! See `examples/quickstart.rs` for the 60-second tour,
//! `docs/ARCHITECTURE.md` for the crate DAG and a one-paragraph tour of
//! every crate, and `DESIGN.md` for the system inventory.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use must_core as core;
pub use must_data as data;
pub use must_encoders as encoders;
pub use must_graph as graph;
pub use must_vector as vector;

/// Convenience prelude: the types most applications need.
pub mod prelude {
    pub use must_core::framework::{Must, MustBuildOptions, MustParts, MustSearcher};
    pub use must_core::metrics::recall_at;
    pub use must_core::persist;
    pub use must_core::runtime::{EngineWorker, RuntimeCounters, ServeEngine, ServeRuntime};
    pub use must_core::server::{MustServer, ServeReply, ServeRequest, ServerWorker};
    pub use must_core::shard::{
        RoutePolicy, ShardAssignment, ShardRouter, ShardSpec, ShardSummary, ShardedMust,
        ShardedServer, ShardedWorker,
    };
    pub use must_core::weights::{WeightLearnConfig, WeightLearner};
    pub use must_vector::{
        FusedRows, ModalityView, MultiQuery, MultiVectorSet, VectorSet, VectorSetBuilder, Weights,
    };
}
