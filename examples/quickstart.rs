//! Quickstart: build a MUST instance over a tiny hand-rolled multimodal
//! corpus and answer a "reference image + text modification" query.
//!
//! Run with `cargo run --release --example quickstart`.

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A corpus of 8 "products", each with an image-like 4-d vector
    // (modality 0, the target) and a text-like 2-d attribute vector
    // (modality 1).  Axis 0/1 of the text space = "red" / "blue".
    let images: [[f32; 4]; 8] = [
        [1.0, 0.1, 0.0, 0.0], // 0: sneaker, red
        [1.0, 0.0, 0.1, 0.0], // 1: sneaker, blue
        [0.0, 1.0, 0.1, 0.0], // 2: boot, red
        [0.0, 1.0, 0.0, 0.1], // 3: boot, blue
        [0.0, 0.0, 1.0, 0.1], // 4: sandal, red
        [0.1, 0.0, 1.0, 0.0], // 5: sandal, blue
        [0.0, 0.1, 0.0, 1.0], // 6: heel, red
        [0.1, 0.0, 0.0, 1.0], // 7: heel, blue
    ];
    let texts: [[f32; 2]; 8] = [
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 0.0],
        [0.0, 1.0],
        [1.0, 0.0],
        [0.0, 1.0],
    ];
    let names = [
        "red sneaker", "blue sneaker", "red boot", "blue boot",
        "red sandal", "blue sandal", "red heel", "blue heel",
    ];

    let mut m0 = VectorSetBuilder::new(4, 8);
    let mut m1 = VectorSetBuilder::new(2, 8);
    for (img, txt) in images.iter().zip(&texts) {
        m0.push_normalized(img)?;
        m1.push_normalized(txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;

    // Weights: either learned (see the face_retrieval example) or
    // user-defined.  Here we weight both modalities equally.
    let must = Must::build(objects, Weights::uniform(2), MustBuildOptions::default())?;

    // MSTM query: "something like the red sneaker (object 0), but blue".
    // Modality 0 carries the reference image, modality 1 the desired
    // attribute.
    let query = MultiQuery::full(vec![images[0].to_vec(), vec![0.0, 1.0]]);
    let hits = must.search(&query, 3, 8)?;

    println!("query: image of '{}' + text 'make it blue'", names[0]);
    for (rank, (id, sim)) in hits.iter().enumerate() {
        println!("  #{} {} (joint similarity {sim:.3})", rank + 1, names[*id as usize]);
    }
    assert_eq!(hits[0].0, 1, "the blue sneaker must win");

    // Queries may omit modalities: a text-only search (t < m) masks the
    // missing modality's weight (Section VII-B of the paper).
    let text_only = MultiQuery::partial(vec![None, Some(vec![0.0, 1.0])]);
    let blue_things = must.search(&text_only, 4, 8)?;
    println!("\ntext-only query 'blue':");
    for (id, _) in &blue_things {
        println!("  {}", names[*id as usize]);
    }
    Ok(())
}
