//! Interactive refinement (Section IX "Single Modality Inputs"): start
//! from a text-only query, take a returned target-modality example as the
//! reference, and iteratively refine with additional constraints.
//!
//! Run with `cargo run --release --example interactive_refinement`.

use must::data::embed::embed_dataset;
use must::encoders::{ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = must::data::catalog::mit_states(0.25, 13);
    println!("{}", dataset.stats_row());

    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 13);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let embedded = embed_dataset(&dataset, &config, &registry);
    let must = Must::build(
        embedded.objects.clone(),
        Weights::uniform(2),
        MustBuildOptions::default(),
    )?;

    // Pick a wanted (class, attribute) from one of the workload queries.
    let sample = &embedded.queries[0];
    let want = sample.want;
    println!("user intent: an object of class {} in state {}", want.class, want.attr);

    // Round 1 — text only (t = 1): the user has no reference image yet.
    let text_only = MultiQuery::partial(vec![None, sample.query.slot(1).map(<[f32]>::to_vec)]);
    let round1 = must.search(&text_only, 5, 200)?;
    println!("\nround 1 (text only) top-5:");
    let mut reference: Option<u32> = None;
    for (id, sim) in &round1 {
        let l = embedded.labels[*id as usize];
        println!("  object {id:>6}  class {:>4} attr {:>4}  sim {sim:.3}", l.class, l.attr);
        // The user picks the first result of the right class as a reference.
        if reference.is_none() && l.class == want.class {
            reference = Some(*id);
        }
    }

    // Round 2 — the chosen result becomes the reference image (the paper's
    // iterative-use property); the text constraint stays.
    let reference = reference.unwrap_or(round1[0].0);
    println!("\nuser picks object {reference} as the visual reference");
    let refined = MultiQuery::full(vec![
        must.objects().modality(0).get(reference).to_vec(),
        sample.query.slot(1).unwrap().to_vec(),
    ]);
    let round2 = must.search(&refined, 5, 200)?;
    println!("round 2 (image + text) top-5:");
    let mut class_hits_r1 = 0;
    let mut class_hits_r2 = 0;
    for ((id1, _), (id2, _)) in round1.iter().zip(&round2) {
        if embedded.labels[*id1 as usize].class == want.class {
            class_hits_r1 += 1;
        }
        let l = embedded.labels[*id2 as usize];
        if l.class == want.class {
            class_hits_r2 += 1;
        }
        println!(
            "  object {id2:>6}  class {:>4} attr {:>4}",
            l.class, l.attr
        );
    }
    println!(
        "\nclass matches in top-5: round 1 = {class_hits_r1}, round 2 = {class_hits_r2} \
         (refinement narrows the search to the intended class)"
    );
    Ok(())
}
