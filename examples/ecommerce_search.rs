//! E-commerce product search on a Shopping-like corpus (the paper's
//! Tab. V scenario): "this T-shirt, but in white jersey instead of grey
//! sweat fabric" — with user-defined weight customisation (Tab. IX).
//!
//! Run with `cargo run --release --example ecommerce_search`.

use must::data::catalog::ShoppingCategory;
use must::data::embed::embed_dataset;
use must::encoders::{ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::prelude::*;
use must::vector::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = must::data::catalog::shopping(ShoppingCategory::TShirt, 0.25, 11);
    println!("{}", dataset.stats_row());

    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 11);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Tirg),
        vec![UnimodalKind::Encoding],
    );
    let embedded = embed_dataset(&dataset, &config, &registry);
    let query = embedded.queries.last().expect("workload").clone();

    // The same corpus under three *user-defined* weight configurations:
    // balanced, image-heavy, text-heavy (Fig. 4(g) Option 2 / Tab. IX).
    for (name, w0_sq, w1_sq) in [
        ("balanced    (w0^2=0.5, w1^2=0.5)", 0.5, 0.5),
        ("image-heavy (w0^2=0.9, w1^2=0.1)", 0.9, 0.1),
        ("text-heavy  (w0^2=0.1, w1^2=0.9)", 0.1, 0.9),
    ] {
        let weights = Weights::from_squared(vec![w0_sq, w1_sq])?;
        let must = Must::build(embedded.objects.clone(), weights, MustBuildOptions::default())?;
        let hits = must.search(&query.query, 5, 100)?;
        // Report how similar the top hit is to each query modality.
        let top = hits[0].0;
        let s_img = kernels::ip(
            query.query.slot(0).unwrap(),
            must.objects().modality(0).get(top),
        );
        let s_txt = kernels::ip(
            query.query.slot(1).unwrap(),
            must.objects().modality(1).get(top),
        );
        println!(
            "{name}: top hit object {top:>6}  image-sim {s_img:.3}  text-sim {s_txt:.3}"
        );
    }
    println!(
        "\nIncreasing a modality's weight pulls results towards that modality \
         (the paper's Tab. IX customisation property)."
    );
    Ok(())
}
