//! Face retrieval on a CelebA-like corpus (the paper's Fig. 3 scenario):
//! a reference face plus a textual attribute change ("no glasses and
//! hat"), answered with *learned* modality weights.
//!
//! Demonstrates the full MUST pipeline: generate → embed → learn weights →
//! build fused index → joint search, and compares against the JE and MR
//! baselines on the same corpus.
//!
//! Run with `cargo run --release --example face_retrieval`.

use must::core::baselines::{BaselineOptions, JointEmbedding, MultiStreamedRetrieval};
use must::core::metrics::recall_at;
use must::core::weights::WeightLearnConfig;
use must::data::embed::embed_dataset;
use must::encoders::{ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::graph::search::SearchScratch;
use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled CelebA-like corpus: identities x facial-attribute combos.
    let dataset = must::data::catalog::celeba(0.25, 7);
    println!("{}", dataset.stats_row());

    // CLIP composition for the target slot + structured attribute text.
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 7);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Encoding],
    );
    let embedded = embed_dataset(&dataset, &config, &registry);

    // Learn modality weights on the first 200 queries.
    let anchors: Vec<_> = embedded.queries[..200].iter().map(|q| (&q.query, q.anchor)).collect();
    let learned = Must::learn_weights(
        &embedded.objects,
        &anchors,
        &WeightLearnConfig { epochs: 200, ..Default::default() },
    );
    println!(
        "learned weights^2 = {:?} (trained in {:.1}s)",
        learned.weights.squared(),
        learned.train_secs
    );

    // Build all three systems over the same corpus.
    let objects = embedded.objects.clone();
    let must = Must::build(objects, learned.weights.clone(), MustBuildOptions::default())?;
    let mr = MultiStreamedRetrieval::build(must.objects(), BaselineOptions::default())?;
    let je = JointEmbedding::build(must.objects(), BaselineOptions::default())?;

    // Evaluate Recall@1(1) on held-out queries.
    let eval = &embedded.queries[200..700.min(embedded.queries.len())];
    let mut searcher = must.searcher();
    let mut visited = SearchScratch::default();
    let (mut r_must, mut r_mr, mut r_je) = (0.0, 0.0, 0.0);
    for q in eval {
        let m = searcher.search(&q.query, 1, 200)?;
        let ids: Vec<u32> = m.results.iter().map(|r| r.0).collect();
        r_must += recall_at(&ids, &q.ground_truth, 1);
        let mr_out = mr.search(&q.query, 1, 300, &mut visited);
        r_mr += recall_at(&mr_out.results, &q.ground_truth, 1);
        let je_out = je.search(&q.query, 1, 200, &mut visited)?;
        let je_ids: Vec<u32> = je_out.iter().map(|r| r.0).collect();
        r_je += recall_at(&je_ids, &q.ground_truth, 1);
    }
    let n = eval.len() as f64;
    println!("\nRecall@1(1) over {} held-out queries:", eval.len());
    println!("  MUST {:.4}", r_must / n);
    println!("  MR   {:.4}", r_mr / n);
    println!("  JE   {:.4}", r_je / n);
    assert!(r_must >= r_mr && r_must >= r_je, "MUST should win on this workload");
    Ok(())
}
