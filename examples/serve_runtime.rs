//! The contention-free serving runtime end to end: freeze a snapshot,
//! start a [`ServeRuntime`] with a few workers, drive it from several
//! producer threads with a mixed stream of single, batch, and
//! weight-overridden requests, and watch the per-worker lanes — depths,
//! executed counts, and steals — while it runs.
//!
//! Run with `cargo run --release --example serve_runtime`.

use std::sync::mpsc;

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- A small two-modality corpus and a frozen serving snapshot. ---
    let (dim_img, dim_txt, n) = (16, 8, 160);
    let mut m0 = VectorSetBuilder::new(dim_img, n);
    let mut m1 = VectorSetBuilder::new(dim_txt, n);
    let mut x = 0.37f32;
    for _ in 0..n {
        let img: Vec<f32> = (0..dim_img)
            .map(|_| {
                x = (x * 53.29).fract() + 0.01;
                x
            })
            .collect();
        let txt: Vec<f32> = (0..dim_txt)
            .map(|_| {
                x = (x * 53.29).fract() + 0.01;
                x
            })
            .collect();
        m0.push_normalized(&img)?;
        m1.push_normalized(&txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;
    let queries: Vec<MultiQuery> = (0..16u32)
        .map(|i| {
            let id = i * 9;
            MultiQuery::full(vec![
                objects.modality(0).get(id).to_vec(),
                objects.modality(1).get(id).to_vec(),
            ])
        })
        .collect();
    let must = Must::build(objects, Weights::uniform(2), MustBuildOptions::default())?;
    let server = MustServer::freeze(must);
    println!("snapshot: {n} objects, 2 modalities, frozen for serving");

    // ---- Start the runtime: 3 workers, one lane each. -----------------
    let (rep_tx, rep_rx) = mpsc::channel();
    let runtime = ServeRuntime::start(&server, 3, rep_tx);
    println!("runtime: {} workers started\n", runtime.workers());

    // ---- Several producers submit a mixed request stream. -------------
    // Each producer interleaves singles, a weight-overridden single, and
    // a batch (one affinity unit: its queries stay on one worker).
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 8;
    let heavy_img = Weights::from_squared(vec![0.8, 0.2])?;
    let mut submitted = 0usize;
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let runtime = &runtime;
            let queries = &queries;
            let heavy_img = &heavy_img;
            scope.spawn(move || {
                for r in 0..ROUNDS {
                    let base = p * 1_000 + r * 10;
                    let req = |id: u64| ServeRequest {
                        id,
                        query: queries[(id as usize) % queries.len()].clone(),
                        k: 5,
                        l: 40,
                    };
                    runtime.submit(req(base));
                    runtime.submit_weighted(req(base + 1), heavy_img.clone());
                    runtime.submit_batch((2..6).map(|j| req(base + j)).collect());
                }
            });
        }
        // Meanwhile: sample the lanes a few times while traffic flows.
        for tick in 0..3 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let c = runtime.counters();
            println!(
                "tick {tick}: lane depths {:?}  executed {:?}  stolen {:?}",
                c.lane_depths, c.executed, c.stolen
            );
        }
    });
    submitted += (PRODUCERS * ROUNDS) as usize * 6; // 2 singles + 4-query batch

    // ---- Drain and inspect the counters. ------------------------------
    let pre = runtime.counters();
    println!(
        "\npre-shutdown: lane depths {:?}  executed {:?}  stolen {:?}",
        pre.lane_depths, pre.executed, pre.stolen
    );
    let served = runtime.shutdown();
    println!("shutdown: drained; served {served} query units (submitted {submitted})");

    let replies: Vec<ServeReply> = rep_rx.iter().collect();
    assert_eq!(replies.len(), submitted, "exactly one reply per request");
    let errors = replies.iter().filter(|r| r.outcome.is_err()).count();
    println!("replies: {} received, {errors} errors — exactly one per request", replies.len());
    Ok(())
}
