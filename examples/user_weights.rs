//! Query-time weighting: one frozen server, many user weight vectors.
//!
//! The engine stores unscaled fused rows, so modality weights are a
//! per-query parameter — "adjust omega" is a serving feature, not an
//! offline rebuild.  This example builds one bundle, loads it into a
//! single `MustServer`, and serves three different user weight vectors
//! **concurrently** from the same frozen snapshot, printing each user's
//! top-k.
//!
//! Run with `cargo run --release --example user_weights`.

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Offline: one corpus, one build, one bundle. ------------------
    // 96 synthetic products in two modalities (image-ish, text-ish).
    let (dim_img, dim_txt, n) = (16, 8, 96);
    let mut m0 = VectorSetBuilder::new(dim_img, n);
    let mut m1 = VectorSetBuilder::new(dim_txt, n);
    let mut x = 0.73f32;
    for _ in 0..n {
        let img: Vec<f32> = (0..dim_img)
            .map(|_| {
                x = (x * 53.71).fract() + 0.01;
                x
            })
            .collect();
        let txt: Vec<f32> = (0..dim_txt)
            .map(|_| {
                x = (x * 53.71).fract() + 0.01;
                x
            })
            .collect();
        m0.push_normalized(&img)?;
        m1.push_normalized(&txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;
    let must = Must::build(objects, Weights::uniform(2), MustBuildOptions::default())?;
    let path = std::env::temp_dir().join("must-user-weights.mustb");
    persist::save(&must, &path)?;

    // ---- Online: one load, three users, three weight vectors. ---------
    let server = MustServer::load(&path)?;
    println!(
        "serving {} objects from one frozen snapshot (default weights^2 = {:?})",
        server.len(),
        server.weights().squared()
    );

    // A query mixing object 10's image with object 55's text: the weights
    // decide which anchor wins.
    let query = MultiQuery::full(vec![
        server.objects().modality(0).get(10).to_vec(),
        server.objects().modality(1).get(55).to_vec(),
    ]);

    let users = [
        ("image-first", Weights::from_squared(vec![0.9, 0.1])?),
        ("balanced", Weights::uniform(2)),
        ("text-first", Weights::from_squared(vec![0.1, 0.9])?),
    ];

    // Every user searches the same server concurrently; no rebuild, no
    // re-freeze, no copies — the override rides on the query row alone.
    std::thread::scope(|scope| {
        for (name, weights) in &users {
            let server = &server;
            let query = &query;
            scope.spawn(move || {
                let out = server
                    .search_weighted(query, weights, 3, 32)
                    .expect("well-formed query");
                let top: Vec<String> = out
                    .results
                    .iter()
                    .map(|(id, sim)| format!("{id} ({sim:.3})"))
                    .collect();
                println!("user {name:<12} w^2 = {:?} -> top-3: {}", weights.squared(), top.join(", "));
            });
        }
    });

    // Smooth interpolation between two users' preferences — a weight
    // slider served from the same snapshot.
    let (a, b) = (&users[0].1, &users[2].1);
    for step in 0..=4 {
        let t = step as f32 / 4.0;
        let blended = Weights::blend(a, b, t)?;
        let out = server.search_weighted(&query, &blended, 1, 32)?;
        println!(
            "blend t={t:.2} w^2 = [{:.2}, {:.2}] -> top id {}",
            blended.sq(0),
            blended.sq(1),
            out.results[0].0
        );
    }

    // Sanity: the extremes route to the modality anchors.
    let img_top = server.search_weighted(&query, &Weights::from_squared(vec![0.999, 0.001])?, 1, 64)?;
    let txt_top = server.search_weighted(&query, &Weights::from_squared(vec![0.001, 0.999])?, 1, 64)?;
    assert_eq!(img_top.results[0].0, 10, "image-heavy weights find the image anchor");
    assert_eq!(txt_top.results[0].0, 55, "text-heavy weights find the text anchor");

    std::fs::remove_file(&path)?;
    Ok(())
}
