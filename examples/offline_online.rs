//! The deployment loop (Fig. 4's offline/online split): build offline,
//! persist a bundle-v2 snapshot, reload it as a shared `MustServer`, and
//! answer queries from several threads at once.
//!
//! Run with `cargo run --release --example offline_online`.

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Offline: embed, build, persist. ------------------------------
    // (The quickstart example walks through the corpus itself; here it is
    // just 64 random-ish products in two modalities.)
    let (dim_img, dim_txt, n) = (16, 8, 64);
    let mut m0 = VectorSetBuilder::new(dim_img, n);
    let mut m1 = VectorSetBuilder::new(dim_txt, n);
    let mut x = 0.37f32;
    for _ in 0..n {
        let img: Vec<f32> = (0..dim_img)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                x
            })
            .collect();
        let txt: Vec<f32> = (0..dim_txt)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                x
            })
            .collect();
        m0.push_normalized(&img)?;
        m1.push_normalized(&txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;
    let must = Must::build(objects, Weights::uniform(2), MustBuildOptions::default())?;

    let path = std::env::temp_dir().join("must-offline-online.mustb");
    persist::save(&must, &path)?;
    println!(
        "offline: built over {n} objects, snapshot at {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ---- Online: load the frozen snapshot and serve concurrently. -----
    let server = MustServer::load(&path)?;
    let queries: Vec<MultiQuery> = (0..8u32)
        .map(|i| {
            let id = i * 7;
            MultiQuery::full(vec![
                server.objects().modality(0).get(id).to_vec(),
                server.objects().modality(1).get(id).to_vec(),
            ])
        })
        .collect();

    // The batch API fans the queries over worker threads; results are
    // bit-identical to serial execution.
    let outcomes = server.search_batch(&queries, 3, 16, 4);
    for (i, out) in outcomes.into_iter().enumerate() {
        let out = out?;
        println!(
            "online: query {i} -> top id {} (sim {:.3}, {} hops)",
            out.results[0].0, out.results[0].1, out.stats.hops
        );
        assert_eq!(out.results[0].0, (i as u32) * 7, "self-query must find itself");
    }

    // The serve loop handles open-ended request streams.
    let (req_tx, req_rx) = std::sync::mpsc::channel();
    let (rep_tx, rep_rx) = std::sync::mpsc::channel();
    for (i, q) in queries.iter().enumerate() {
        req_tx.send(ServeRequest { id: i as u64, query: q.clone(), k: 1, l: 16 })?;
    }
    drop(req_tx);
    let served = server.serve(req_rx, rep_tx, 2);
    println!("online: serve loop answered {served} requests");
    assert_eq!(rep_rx.iter().count(), served);

    std::fs::remove_file(&path)?;
    Ok(())
}
