//! Sharded scatter-gather deployment: split a corpus over shards, build
//! every shard in parallel, persist the whole deployment as one bundle-v4
//! file, reload it, and serve queries whose per-shard results merge by
//! exact joint similarity.
//!
//! Run with `cargo run --release --example sharded_serving`.

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Offline: build S shards in parallel and persist one bundle. --
    let (dim_img, dim_txt, n) = (16, 8, 120);
    let mut m0 = VectorSetBuilder::new(dim_img, n);
    let mut m1 = VectorSetBuilder::new(dim_txt, n);
    let mut x = 0.41f32;
    for _ in 0..n {
        let img: Vec<f32> = (0..dim_img)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                x
            })
            .collect();
        let txt: Vec<f32> = (0..dim_txt)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                x
            })
            .collect();
        m0.push_normalized(&img)?;
        m1.push_normalized(&txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;
    let queries: Vec<MultiQuery> = (0..6u32)
        .map(|i| {
            let id = i * 19;
            MultiQuery::full(vec![
                objects.modality(0).get(id).to_vec(),
                objects.modality(1).get(id).to_vec(),
            ])
        })
        .collect();

    let sharded = ShardedMust::build(
        objects,
        Weights::uniform(2),
        MustBuildOptions::default(),
        ShardSpec::new(4),
    )?;
    println!(
        "offline: built {} shards over {} objects (sizes: {:?})",
        sharded.num_shards(),
        sharded.len(),
        (0..sharded.num_shards()).map(|s| sharded.global_ids(s).len()).collect::<Vec<_>>()
    );
    let path = std::env::temp_dir().join("must-sharded-serving.mustb");
    persist::save_sharded(&sharded, &path)?;
    println!(
        "offline: bundle v4 at {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ---- Online: reload and serve scatter-gather. ---------------------
    let server = ShardedServer::load(&path)?;
    let outcomes = server.search_batch(&queries, 3, 16, 2);
    for (i, out) in outcomes.into_iter().enumerate() {
        let out = out?;
        println!(
            "online: query {i} -> global id {} (sim {:.3}, {} hops across {} shards)",
            out.results[0].0,
            out.results[0].1,
            out.stats.hops,
            server.num_shards()
        );
        assert_eq!(out.results[0].0, (i as u32) * 19, "self-query must find itself");
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
