//! Sharded scatter-gather deployment: split a corpus over **clustered**
//! shards, build every shard in parallel, persist the whole deployment
//! (including per-shard routing summaries) as one bundle-v6 file, reload
//! it, and serve queries whose per-shard results merge by exact joint
//! similarity — first at full fan-out, then routed to a single shard via
//! the selective-routing dial.
//!
//! Run with `cargo run --release --example sharded_serving`.

use must::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Offline: build S shards in parallel and persist one bundle. --
    // Four "topics": each object leans strongly toward one anchor
    // coordinate, plus deterministic noise — the cluster structure the
    // clustered assignment (and hence selective routing) exploits.
    let (dim_img, dim_txt, n) = (16, 8, 120);
    let mut m0 = VectorSetBuilder::new(dim_img, n);
    let mut m1 = VectorSetBuilder::new(dim_txt, n);
    let mut x = 0.41f32;
    for i in 0..n {
        let topic = i % 4;
        let mut img: Vec<f32> = (0..dim_img)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                0.2 * x
            })
            .collect();
        img[topic] += 1.0;
        let mut txt: Vec<f32> = (0..dim_txt)
            .map(|_| {
                x = (x * 61.17).fract() + 0.01;
                0.2 * x
            })
            .collect();
        txt[topic] += 1.0;
        m0.push_normalized(&img)?;
        m1.push_normalized(&txt)?;
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()])?;
    let queries: Vec<MultiQuery> = (0..6u32)
        .map(|i| {
            let id = i * 19;
            MultiQuery::full(vec![
                objects.modality(0).get(id).to_vec(),
                objects.modality(1).get(id).to_vec(),
            ])
        })
        .collect();

    let sharded = ShardedMust::build(
        objects,
        Weights::uniform(2),
        MustBuildOptions::default(),
        ShardSpec::clustered(4),
    )?;
    println!(
        "offline: built {} shards over {} objects (sizes: {:?})",
        sharded.num_shards(),
        sharded.len(),
        (0..sharded.num_shards()).map(|s| sharded.global_ids(s).len()).collect::<Vec<_>>()
    );
    let path = std::env::temp_dir().join("must-sharded-serving.mustb");
    persist::save_sharded(&sharded, &path)?;
    println!(
        "offline: bundle v6 at {} ({} bytes, summaries included)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ---- Online: reload and serve scatter-gather. ---------------------
    let server = ShardedServer::load(&path)?;
    let outcomes = server.search_batch(&queries, 3, 16, 2);
    for (i, out) in outcomes.into_iter().enumerate() {
        let out = out?;
        println!(
            "online: query {i} -> global id {} (sim {:.3}, {} hops across {} shards)",
            out.results[0].0,
            out.results[0].1,
            out.stats.hops,
            server.num_shards()
        );
        assert_eq!(out.results[0].0, (i as u32) * 19, "self-query must find itself");
    }

    // ---- Selective routing: the (r, l_shard) dial. --------------------
    // r = S is pinned bit-identical to the unrouted scatter; smaller r
    // scores the query against every shard's summary (centroid + radius
    // per modality, under the active omega^2) and searches only the best
    // shards.  A self-query lives in exactly one clustered shard, so even
    // r = 1 finds it.
    let full = server.with_routing(RoutePolicy::new(server.num_shards()));
    let routed = server.with_routing(RoutePolicy::with_beam(1, 16));
    for (i, q) in queries.iter().enumerate() {
        let a = server.search(q, 3, 16)?;
        let b = full.search(q, 3, 16)?;
        assert_eq!(a.results, b.results, "r = S routing is bit-identical");
        let c = routed.search(q, 3, 16)?;
        println!(
            "routed: query {i} -> global id {} via 1 of {} shards (sim {:.3})",
            c.results[0].0,
            server.num_shards(),
            c.results[0].1
        );
        assert_eq!(c.results[0].0, (i as u32) * 19, "routed self-query must find itself");
    }

    std::fs::remove_file(&path)?;
    Ok(())
}
