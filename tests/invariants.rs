//! Cross-crate property tests pinning the paper's lemmas on realistic
//! (encoder-produced) embeddings rather than toy vectors.

use must::core::search::brute_force_search;
use must::data::embed::embed_dataset;
use must::encoders::{EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::graph::quality::audit;
use must::prelude::*;
use must::vector::JointDistance;
use proptest::prelude::*;

fn small_embedded() -> must::data::embed::EmbeddedDataset {
    let ds = must::data::catalog::image_text(600, 40, 5);
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 5);
    let config = EncoderConfig::new(
        TargetEncoding::Independent(UnimodalKind::ResNet50),
        vec![UnimodalKind::Lstm],
    );
    embed_dataset(&ds, &config, &registry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Lemma 4 on real embeddings: pruned and unpruned brute force return
    /// identical rankings for arbitrary weights and queries.
    #[test]
    fn lemma4_lossless_on_encoder_output(
        w0 in 0.05f32..1.5,
        w1 in 0.05f32..1.5,
        qi in 0usize..40,
    ) {
        let embedded = small_embedded();
        let weights = Weights::new(vec![w0, w1]).unwrap();
        let joint = JointDistance::new(&embedded.objects, weights).unwrap();
        let q = &embedded.queries[qi].query;
        let a = brute_force_search(&joint, q, 10, true).unwrap();
        let b = brute_force_search(&joint, q, 10, false).unwrap();
        let ids = |o: &must::core::search::SearchOutcome| {
            o.results.iter().map(|r| r.0).collect::<Vec<_>>()
        };
        prop_assert_eq!(ids(&a), ids(&b));
        prop_assert!(a.kernel_evals <= b.kernel_evals);
    }

    /// The fused index is always fully reachable from its seed
    /// (component 5), for arbitrary weights and gamma.
    #[test]
    fn fused_index_is_always_connected(
        w0 in 0.1f32..1.2,
        w1 in 0.1f32..1.2,
        gamma in 4usize..16,
    ) {
        let embedded = small_embedded();
        let weights = Weights::new(vec![w0, w1]).unwrap();
        let must = Must::build(
            embedded.objects,
            weights,
            MustBuildOptions { gamma, ..Default::default() },
        )
        .unwrap();
        let graph = must.index().graph().expect("fused recipe is flat");
        let a = audit(graph);
        prop_assert!((a.reachability - 1.0).abs() < 1e-9);
        prop_assert!(a.vertices == 600);
    }

    /// Search results are sorted, unique, and scored consistently with the
    /// joint similarity (Lemma 1).
    #[test]
    fn search_results_are_consistent(qi in 0usize..40, l in 20usize..200) {
        let embedded = small_embedded();
        let weights = Weights::uniform(2);
        let must = Must::build(embedded.objects, weights.clone(), MustBuildOptions::default())
            .unwrap();
        let q = &embedded.queries[qi].query;
        let hits = must.search(q, 10, l).unwrap();
        // Sorted descending, unique ids.
        for w in hits.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
            prop_assert!(w[0].0 != w[1].0);
        }
        // Reported similarity equals the Lemma-1 weighted sum.
        let joint = JointDistance::new(must.objects(), weights).unwrap();
        let ev = joint.query(q).unwrap();
        for (id, sim) in &hits {
            prop_assert!((ev.ip(*id) - sim).abs() < 1e-4);
        }
    }
}

/// Recall is monotone in the pool size l (Lemma 3's practical corollary).
#[test]
fn recall_is_monotone_in_l() {
    let embedded = small_embedded();
    let must =
        Must::build(embedded.objects.clone(), Weights::uniform(2), MustBuildOptions::default())
            .unwrap();
    let mut searcher = must.searcher();
    let mut last = -1.0f64;
    for l in [10usize, 40, 160, 600] {
        let mut recall = 0.0;
        for q in &embedded.queries {
            let exact = must.brute_force(&q.query, 1).unwrap().results[0].0;
            let out = searcher.search(&q.query, 1, l).unwrap();
            if out.results[0].0 == exact {
                recall += 1.0;
            }
        }
        recall /= embedded.queries.len() as f64;
        assert!(
            recall + 0.08 >= last,
            "recall should not collapse as l grows: {last} -> {recall} at l = {l}"
        );
        last = recall.max(last);
    }
    assert!(last > 0.9, "large-l recall should approach exact: {last}");
}
