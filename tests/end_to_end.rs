//! Cross-crate integration tests: generate → embed → learn → index →
//! search, and the paper's headline claims at small scale.

use must::core::baselines::{BaselineOptions, JointEmbedding, MultiStreamedRetrieval};
use must::core::metrics::recall_at;
use must::core::search::brute_force_search;
use must::core::weights::WeightLearnConfig;
use must::data::embed::embed_dataset;
use must::encoders::{
    ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind,
};
use must::graph::search::SearchScratch;
use must::prelude::*;
use must::vector::JointDistance;

fn mit_small() -> must::data::LatentDataset {
    must::data::catalog::mit_states(0.2, 42)
}

fn clip_lstm() -> EncoderConfig {
    EncoderConfig::new(TargetEncoding::Composed(ComposerKind::Clip), vec![UnimodalKind::Lstm])
}

struct Pipeline {
    embedded: must::data::embed::EmbeddedDataset,
    weights: Weights,
}

fn pipeline() -> Pipeline {
    let ds = mit_small();
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 42);
    let embedded = embed_dataset(&ds, &clip_lstm(), &registry);
    let anchors: Vec<_> =
        embedded.queries[..120].iter().map(|q| (&q.query, q.anchor)).collect();
    let learned = Must::learn_weights(
        &embedded.objects,
        &anchors,
        &WeightLearnConfig { epochs: 150, ..Default::default() },
    );
    Pipeline { embedded, weights: learned.weights }
}

/// Workspace smoke test: a tiny corpus goes latent → embed → build →
/// search in seconds, the fused index agrees with brute force on top-1,
/// and the Lemma-4 prefix bound actually prunes candidate evaluations
/// (`SearchStats::pruned > 0`) without changing results.
#[test]
fn tiny_corpus_build_search_roundtrip() {
    let ds = must::data::catalog::mit_states(0.03, 7);
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 7);
    let embedded = embed_dataset(&ds, &clip_lstm(), &registry);
    let must = Must::build(
        embedded.objects.clone(),
        Weights::uniform(2),
        MustBuildOptions { gamma: 16, ..Default::default() },
    )
    .unwrap();
    let mut searcher = must.searcher();

    let (mut agree, mut pruned_total, total) = (0usize, 0u64, 25usize);
    for q in embedded.queries.iter().take(total) {
        let exact = must.brute_force(&q.query, 1).unwrap();
        let approx = searcher.search(&q.query, 1, 120).unwrap();
        if exact.results[0].0 == approx.results[0].0 {
            agree += 1;
        }
        pruned_total += approx.stats.pruned;
        assert!(
            approx.stats.evaluated >= approx.stats.pruned,
            "stats coherence: {:?}",
            approx.stats
        );
    }
    // Recall vs. brute force: the fused index must agree on (almost)
    // every top-1 at this pool size.
    assert!(agree * 10 >= total * 9, "top-1 agreement {agree}/{total}");
    // The Lemma-4 multi-vector optimisation must actually fire on a
    // pruned fused-index search.
    assert!(pruned_total > 0, "expected non-zero pruned candidate count");

    // And switching pruning off preserves results (the Fig. 10(c) claim).
    let q = embedded.queries[0].query.clone();
    let with = searcher.search(&q, 5, 80).unwrap();
    drop(searcher);
    let mut must = must;
    must.set_prune(false);
    let without = must.search(&q, 5, 80).unwrap();
    let ids = |r: &[(u32, f32)]| r.iter().map(|x| x.0).collect::<Vec<_>>();
    assert_eq!(ids(&with.results), ids(&without));
}

/// Mean recall@k of the three frameworks (exact search each, the Tabs.
/// III–VI protocol) over the evaluation slice: `(MUST, MR, JE)`.
fn framework_recalls(p: &Pipeline, k: usize) -> (f64, f64, f64) {
    let joint = JointDistance::new(&p.embedded.objects, p.weights.clone()).unwrap();
    let objects = &p.embedded.objects;
    let eval = &p.embedded.queries[120..520.min(p.embedded.queries.len())];
    let (mut r_must, mut r_mr, mut r_je) = (0.0, 0.0, 0.0);
    for q in eval {
        let ids: Vec<u32> = brute_force_search(&joint, &q.query, k, true)
            .unwrap()
            .results
            .iter()
            .map(|r| r.0)
            .collect();
        r_must += recall_at(&ids, &q.ground_truth, k);

        let mut per = Vec::new();
        for mi in 0..objects.num_modalities() {
            if let Some(slot) = q.query.slot(mi) {
                per.push(objects.modality(mi).brute_force_top_k(slot, 300));
            }
        }
        let merged = must::core::baselines::merge_candidates(&per, k).0;
        r_mr += recall_at(&merged, &q.ground_truth, k);

        let je_ids: Vec<u32> = objects
            .modality(0)
            .brute_force_top_k(q.query.slot(0).unwrap(), k)
            .iter()
            .map(|r| r.0)
            .collect();
        r_je += recall_at(&je_ids, &q.ground_truth, k);
    }
    let n = eval.len() as f64;
    (r_must / n, r_mr / n, r_je / n)
}

/// The paper's headline accuracy claim, end to end: MUST's weighted joint
/// similarity beats both the MR merge and the JE single-vector search on
/// the same corpus and queries.
#[test]
fn must_beats_mr_and_je_on_recall() {
    let (r_must, r_mr, r_je) = framework_recalls(&pipeline(), 5);
    assert!(
        r_must > r_mr && r_must > r_je,
        "MUST {r_must} must beat MR {r_mr} and JE {r_je}"
    );
}

/// Recall@10 regression pin for the paper's headline effect, end to end on
/// the seeded small corpus: MUST's weighted joint similarity must beat both
/// the MR merge (whose per-modality candidate lists drown in merge
/// ambiguity) and the JE composition search.  Future performance work on
/// the serving/index layers cannot silently trade this win away — if this
/// test regresses, the change altered *what* is retrieved, not just how
/// fast.
#[test]
fn recall_at_10_regression_must_over_mr_and_je() {
    let (r_must, r_mr, r_je) = framework_recalls(&pipeline(), 10);
    assert!(
        r_must >= r_mr && r_must >= r_je,
        "recall@10 regression: MUST {r_must:.4} must stay >= MR {r_mr:.4} and JE {r_je:.4}"
    );
    assert!(
        r_must > 0.25,
        "absolute recall@10 floor: MUST {r_must:.4} must stay above 0.25"
    );
}

/// The fused index approximates exact joint search closely at moderate l.
#[test]
fn fused_index_matches_brute_force() {
    let p = pipeline();
    let must = Must::build(
        p.embedded.objects.clone(),
        p.weights.clone(),
        MustBuildOptions { gamma: 20, ..Default::default() },
    )
    .unwrap();
    let mut searcher = must.searcher();
    let mut agree = 0;
    let total = 40;
    for q in p.embedded.queries.iter().skip(120).take(total) {
        let exact = must.brute_force(&q.query, 1).unwrap();
        let approx = searcher.search(&q.query, 1, 300).unwrap();
        if exact.results[0].0 == approx.results[0].0 {
            agree += 1;
        }
    }
    assert!(agree * 10 >= total * 9, "agreement {agree}/{total}");
}

/// Graph-backed baselines run end to end and return sane results.
#[test]
fn baselines_run_on_real_embeddings() {
    let p = pipeline();
    let opts = BaselineOptions { gamma: 16, ..Default::default() };
    let mr = MultiStreamedRetrieval::build(&p.embedded.objects, opts).unwrap();
    let je = JointEmbedding::build(&p.embedded.objects, opts).unwrap();
    let mut visited = SearchScratch::default();
    let q = &p.embedded.queries[200];
    let mr_out = mr.search(&q.query, 10, 200, &mut visited);
    assert_eq!(mr_out.results.len(), 10);
    let je_out = je.search(&q.query, 10, 100, &mut visited).unwrap();
    assert_eq!(je_out.len(), 10);
}

/// t < m: dropping the auxiliary modality degrades accuracy (Tab. X).
#[test]
fn multimodal_queries_beat_single_modality() {
    let p = pipeline();
    let joint = JointDistance::new(&p.embedded.objects, p.weights.clone()).unwrap();
    let eval = &p.embedded.queries[120..420.min(p.embedded.queries.len())];
    let (mut r_full, mut r_target_only) = (0.0, 0.0);
    for q in eval {
        let full: Vec<u32> = brute_force_search(&joint, &q.query, 10, true)
            .unwrap()
            .results
            .iter()
            .map(|r| r.0)
            .collect();
        r_full += recall_at(&full, &q.ground_truth, 10);
        let target_only = MultiQuery::partial(vec![
            q.query.slot(0).map(<[f32]>::to_vec),
            None,
        ]);
        let t_ids: Vec<u32> = brute_force_search(&joint, &target_only, 10, true)
            .unwrap()
            .results
            .iter()
            .map(|r| r.0)
            .collect();
        r_target_only += recall_at(&t_ids, &q.ground_truth, 10);
    }
    assert!(
        r_full > r_target_only,
        "full queries {r_full} must beat target-only {r_target_only}"
    );
}

/// Learned weights transfer across query content (Section VIII-F): the
/// same weights rank a fresh batch of queries well.
#[test]
fn learned_weights_generalize_to_unseen_queries() {
    let p = pipeline();
    let joint = JointDistance::new(&p.embedded.objects, p.weights.clone()).unwrap();
    // Evaluate only on queries far outside the training slice.
    let eval = &p.embedded.queries[p.embedded.queries.len() - 200..];
    let mut recall = 0.0;
    for q in eval {
        let ids: Vec<u32> = brute_force_search(&joint, &q.query, 10, true)
            .unwrap()
            .results
            .iter()
            .map(|r| r.0)
            .collect();
        recall += recall_at(&ids, &q.ground_truth, 10);
    }
    recall /= eval.len() as f64;
    assert!(recall > 0.25, "held-out recall@10 too low: {recall}");
}
