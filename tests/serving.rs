//! Online-serving integration tests: one frozen snapshot, many threads,
//! results bit-identical to serial execution (the contract that makes the
//! concurrent query engine trustworthy), plus the offline→online
//! round-trip through the current binary bundle.

use std::sync::mpsc;

use must::data::embed::embed_dataset;
use must::encoders::{ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::prelude::*;

/// Embeds a small MIT-States-style corpus and returns a built `Must`
/// plus a 64-query workload.
fn built_fixture() -> (Must, Vec<MultiQuery>) {
    let ds = must::data::catalog::mit_states(0.05, 4242);
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 4242);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let embedded = embed_dataset(&ds, &config, &registry);
    let queries: Vec<MultiQuery> =
        embedded.queries.iter().take(64).map(|q| q.query.clone()).collect();
    assert_eq!(queries.len(), 64, "fixture needs a full 64-query workload");
    let must = Must::build(
        embedded.objects,
        Weights::uniform(2),
        MustBuildOptions { gamma: 16, ..Default::default() },
    )
    .unwrap();
    (must, queries)
}

/// Same fixture, frozen for serving.
fn serving_fixture() -> (MustServer, Vec<MultiQuery>) {
    let (must, queries) = built_fixture();
    (MustServer::freeze(must), queries)
}

/// Build once, search the same 64-query workload from 8 threads and
/// serially: every thread must observe identical ranked ids, similarities,
/// and `SearchStats` per query.
#[test]
fn eight_threads_match_serial_bit_for_bit() {
    let (server, queries) = serving_fixture();
    let (k, l) = (10, 60);

    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let server = &server;
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                let mut worker = server.worker();
                for (qi, (q, expect)) in queries.iter().zip(serial).enumerate() {
                    let got = worker.search(q, k, l).unwrap();
                    assert_eq!(got.results, expect.results, "thread {t} query {qi}: ids/sims");
                    assert_eq!(got.stats, expect.stats, "thread {t} query {qi}: stats");
                }
            });
        }
    });

    // The batch API fans the same workload internally; same contract.
    for threads in [2, 8] {
        let batch = server.search_batch(&queries, k, l, threads);
        for (qi, (got, expect)) in batch.into_iter().zip(&serial).enumerate() {
            let got = got.unwrap();
            assert_eq!(got.results, expect.results, "batch({threads}) query {qi}");
            assert_eq!(got.stats, expect.stats, "batch({threads}) query {qi}");
        }
    }
}

/// The serve loop answers a full stream across 8 workers with, per query,
/// exactly the serial outcome.
#[test]
fn serve_loop_matches_serial_outcomes() {
    let (server, queries) = serving_fixture();
    let (k, l) = (5, 40);
    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    let (req_tx, req_rx) = mpsc::channel();
    let (rep_tx, rep_rx) = mpsc::channel();
    for (i, q) in queries.iter().enumerate() {
        req_tx.send(ServeRequest { id: i as u64, query: q.clone(), k, l }).unwrap();
    }
    drop(req_tx);
    let served = server.serve(req_rx, rep_tx, 8);
    assert_eq!(served, queries.len());

    let mut replies: Vec<ServeReply> = rep_rx.iter().collect();
    assert_eq!(replies.len(), queries.len());
    replies.sort_by_key(|r| r.id);
    for (i, rep) in replies.into_iter().enumerate() {
        assert_eq!(rep.id, i as u64);
        let out = rep.outcome.unwrap();
        assert_eq!(out.results, serial[i].results, "request {i}");
        assert_eq!(out.stats, serial[i].stats, "request {i}");
    }
}

/// Offline build → binary bundle on disk → `MustServer::load` → serving
/// results identical to the in-process freeze (the README quickstart
/// deployment path).
#[test]
fn bundle_load_serves_identically() {
    let (must, queries) = built_fixture();
    let dir = std::env::temp_dir().join("must-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("snapshot-{}.mustb", std::process::id()));
    persist::save(&must, &path).unwrap();
    let server = MustServer::freeze(must);

    let loaded = MustServer::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    for (qi, q) in queries.iter().take(16).enumerate() {
        let a = server.search(q, 10, 60).unwrap();
        let b = loaded.search(q, 10, 60).unwrap();
        assert_eq!(a.results, b.results, "query {qi}");
        assert_eq!(a.stats, b.stats, "query {qi}");
    }
}
