//! Online-serving integration tests: one frozen snapshot, many threads,
//! results bit-identical to serial execution (the contract that makes the
//! concurrent query engine trustworthy), the offline→online round-trip
//! through the current binary bundle, and the [`ServeRuntime`] delivery
//! guarantees — every submitted request gets exactly one reply matching
//! the serial oracle bitwise, under producer concurrency, mixed
//! single/batch/weighted traffic, work stealing, and shutdown drain.

use std::sync::mpsc;

use must::data::embed::embed_dataset;
use must::encoders::{ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind};
use must::prelude::*;

/// Embeds a small MIT-States-style corpus and returns a built `Must`
/// plus a 64-query workload.
fn built_fixture() -> (Must, Vec<MultiQuery>) {
    let ds = must::data::catalog::mit_states(0.05, 4242);
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 4242);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let embedded = embed_dataset(&ds, &config, &registry);
    let queries: Vec<MultiQuery> =
        embedded.queries.iter().take(64).map(|q| q.query.clone()).collect();
    assert_eq!(queries.len(), 64, "fixture needs a full 64-query workload");
    let must = Must::build(
        embedded.objects,
        Weights::uniform(2),
        MustBuildOptions { gamma: 16, ..Default::default() },
    )
    .unwrap();
    (must, queries)
}

/// Same fixture, frozen for serving.
fn serving_fixture() -> (MustServer, Vec<MultiQuery>) {
    let (must, queries) = built_fixture();
    (MustServer::freeze(must), queries)
}

/// Build once, search the same 64-query workload from 8 threads and
/// serially: every thread must observe identical ranked ids, similarities,
/// and `SearchStats` per query.
#[test]
fn eight_threads_match_serial_bit_for_bit() {
    let (server, queries) = serving_fixture();
    let (k, l) = (10, 60);

    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let server = &server;
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                let mut worker = server.worker();
                for (qi, (q, expect)) in queries.iter().zip(serial).enumerate() {
                    let got = worker.search(q, k, l).unwrap();
                    assert_eq!(got.results, expect.results, "thread {t} query {qi}: ids/sims");
                    assert_eq!(got.stats, expect.stats, "thread {t} query {qi}: stats");
                }
            });
        }
    });

    // The batch API fans the same workload internally; same contract.
    for threads in [2, 8] {
        let batch = server.search_batch(&queries, k, l, threads);
        for (qi, (got, expect)) in batch.into_iter().zip(&serial).enumerate() {
            let got = got.unwrap();
            assert_eq!(got.results, expect.results, "batch({threads}) query {qi}");
            assert_eq!(got.stats, expect.stats, "batch({threads}) query {qi}");
        }
    }
}

/// The serve loop answers a full stream across 8 workers with, per query,
/// exactly the serial outcome.
#[test]
fn serve_loop_matches_serial_outcomes() {
    let (server, queries) = serving_fixture();
    let (k, l) = (5, 40);
    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    let (req_tx, req_rx) = mpsc::channel();
    let (rep_tx, rep_rx) = mpsc::channel();
    for (i, q) in queries.iter().enumerate() {
        req_tx.send(ServeRequest { id: i as u64, query: q.clone(), k, l }).unwrap();
    }
    drop(req_tx);
    let served = server.serve(req_rx, rep_tx, 8);
    assert_eq!(served, queries.len());

    let mut replies: Vec<ServeReply> = rep_rx.iter().collect();
    assert_eq!(replies.len(), queries.len());
    replies.sort_by_key(|r| r.id);
    for (i, rep) in replies.into_iter().enumerate() {
        assert_eq!(rep.id, i as u64);
        let out = rep.outcome.unwrap();
        assert_eq!(out.results, serial[i].results, "request {i}");
        assert_eq!(out.stats, serial[i].stats, "request {i}");
    }
}

/// Ragged batch sizes (e.g. 17 queries over 4 threads) must be
/// bit-identical to serial for every thread count: atomic chunk claiming
/// changes *which* worker runs a query, never the query's work.  The old
/// static split (5+5+5+2) also had to be correct, but its tail imbalance
/// hid behind the same assertion — this pins the claiming rewrite.
#[test]
fn ragged_batches_match_serial_for_any_thread_count() {
    let (server, queries) = serving_fixture();
    let (k, l) = (10, 60);
    let mut worker = server.worker();
    for n in [1usize, 2, 17, 23, 61] {
        let qs = &queries[..n];
        let serial: Vec<_> = qs.iter().map(|q| worker.search(q, k, l).unwrap()).collect();
        for threads in [2usize, 4, 7, 16] {
            let batch = server.search_batch(qs, k, l, threads);
            assert_eq!(batch.len(), n);
            for (qi, (got, expect)) in batch.into_iter().zip(&serial).enumerate() {
                let got = got.unwrap();
                assert_eq!(got.results, expect.results, "n={n} threads={threads} query {qi}");
                assert_eq!(got.stats, expect.stats, "n={n} threads={threads} query {qi}");
            }
        }
    }
}

/// The runtime stress pin: several producer threads submit an interleaved
/// mix of single, batch, and weight-overridden requests; every request id
/// must get **exactly one** reply, bit-identical to the serial oracle
/// under the same weights, and shutdown must drain all in-flight lanes
/// without dropping or duplicating anything.
#[test]
fn runtime_stress_every_request_answered_exactly_once() {
    let (server, queries) = serving_fixture();
    let (k, l) = (5, 40);
    let override_w = Weights::from_squared(vec![0.7, 0.3]).unwrap();

    // Serial oracles: default weights and the override.
    let mut worker = server.worker();
    let oracle_default: Vec<_> =
        queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();
    let oracle_override: Vec<_> = queries
        .iter()
        .map(|q| worker.search_weighted(q, &override_w, k, l).unwrap())
        .collect();

    // Request plan: id encodes (producer, sequence); the map records which
    // query index and weight regime each id must be answered under.
    const PRODUCERS: u64 = 4;
    const ROUNDS: usize = 6;
    let (rep_tx, rep_rx) = mpsc::channel();
    let runtime = ServeRuntime::start(&server, 3, rep_tx);
    let mut expect: std::collections::HashMap<u64, (usize, bool)> = std::collections::HashMap::new();
    for p in 0..PRODUCERS {
        for r in 0..ROUNDS as u64 {
            let base = p * 1_000 + r * 100;
            // One single, one weighted single, one 4-query batch, one
            // 4-query weighted batch per round, ids disjoint by plan.
            expect.insert(base, ((base as usize) % queries.len(), false));
            expect.insert(base + 1, ((base as usize + 7) % queries.len(), true));
            for j in 0..4u64 {
                expect.insert(base + 10 + j, ((base as usize + 13 + j as usize) % queries.len(), false));
                expect.insert(base + 20 + j, ((base as usize + 29 + j as usize) % queries.len(), true));
            }
        }
    }
    let total = expect.len();

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let runtime = &runtime;
            let queries = &queries;
            let override_w = &override_w;
            scope.spawn(move || {
                for r in 0..ROUNDS as u64 {
                    let base = p * 1_000 + r * 100;
                    let req = |id: u64, qi: usize| ServeRequest {
                        id,
                        query: queries[qi % queries.len()].clone(),
                        k,
                        l,
                    };
                    runtime.submit(req(base, base as usize));
                    runtime.submit_weighted(req(base + 1, base as usize + 7), override_w.clone());
                    runtime.submit_batch(
                        (0..4u64).map(|j| req(base + 10 + j, base as usize + 13 + j as usize)).collect(),
                    );
                    runtime.submit_batch_weighted(
                        (0..4u64).map(|j| req(base + 20 + j, base as usize + 29 + j as usize)).collect(),
                        override_w.clone(),
                    );
                }
            });
        }
    });

    let served = runtime.shutdown();
    assert_eq!(served, total, "shutdown must drain every lane");

    let mut seen = std::collections::HashSet::new();
    let mut replies = 0usize;
    for rep in rep_rx.iter() {
        assert!(seen.insert(rep.id), "duplicate reply for id {}", rep.id);
        let (qi, weighted) = expect[&rep.id];
        let oracle = if weighted { &oracle_override[qi] } else { &oracle_default[qi] };
        let got = rep.outcome.unwrap();
        assert_eq!(got.results, oracle.results, "id {} (weighted={weighted})", rep.id);
        assert_eq!(got.stats, oracle.stats, "id {} (weighted={weighted})", rep.id);
        replies += 1;
    }
    assert_eq!(replies, total, "exactly one reply per submitted request");
}

/// Submitting a burst and shutting down immediately must still answer
/// everything: shutdown drains, it never drops.
#[test]
fn runtime_shutdown_drains_queued_backlog() {
    let (server, queries) = serving_fixture();
    let (rep_tx, rep_rx) = mpsc::channel();
    let runtime = ServeRuntime::start(&server, 2, rep_tx);
    let n = 200u64;
    for i in 0..n {
        runtime.submit(ServeRequest {
            id: i,
            query: queries[(i as usize) % queries.len()].clone(),
            k: 3,
            l: 30,
        });
    }
    // No waiting: lanes are still (mostly) full when shutdown begins.
    assert_eq!(runtime.shutdown() as u64, n);
    let mut ids: Vec<u64> = rep_rx.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..n).collect::<Vec<_>>());
}

/// The SQ8 serving path — quantized Lemma-4 walk over the u8 codes,
/// then an exact f32 re-rank of the top `4·k` pool — must hold
/// Recall@10 within 0.005 of the f32 path on the committed corpus,
/// under the frozen default weights and a per-query override (codes
/// are weight-free, so one engine serves both).
#[test]
fn quantized_serving_recall_matches_f32_within_half_a_point() {
    let (must, queries) = built_fixture();
    let corpus = must.objects().clone();
    let f32_server = MustServer::freeze(must);

    let (mut quantized, _) = built_fixture();
    quantized.quantize();
    let quant_server = MustServer::freeze(quantized);
    assert!(quant_server.quant().is_some(), "freeze must carry the SQ8 engine");

    let (k, l) = (10, 100);
    let override_w = Weights::from_squared(vec![0.75, 0.25]).unwrap();
    for (case, w) in [Weights::uniform(2), override_w].into_iter().enumerate() {
        let gt = must::core::search::exact_ground_truth(&corpus, &w, &queries, k).unwrap();
        let recall_of = |server: &MustServer| -> f64 {
            let outs = if case == 0 {
                // The frozen default path (weights baked at build time).
                server.search_batch(&queries, k, l, 1)
            } else {
                server.search_batch_weighted(&queries, &w, k, l, 1)
            };
            let sum: f64 = outs
                .into_iter()
                .zip(&gt)
                .map(|(out, g)| {
                    let ids: Vec<must::vector::ObjectId> =
                        out.unwrap().results.iter().map(|r| r.0).collect();
                    recall_at(&ids, g, k)
                })
                .sum();
            sum / queries.len() as f64
        };
        let f32_recall = recall_of(&f32_server);
        let quant_recall = recall_of(&quant_server);
        assert!(
            quant_recall >= f32_recall - 0.005,
            "case {case}: quantized recall@10 {quant_recall:.4} trails the f32 path's \
             {f32_recall:.4} by more than 0.005"
        );
    }
}

/// Offline build → binary bundle on disk → `MustServer::load` → serving
/// results identical to the in-process freeze (the README quickstart
/// deployment path).
#[test]
fn bundle_load_serves_identically() {
    let (must, queries) = built_fixture();
    let dir = std::env::temp_dir().join("must-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("snapshot-{}.mustb", std::process::id()));
    persist::save(&must, &path).unwrap();
    let server = MustServer::freeze(must);

    let loaded = MustServer::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    for (qi, q) in queries.iter().take(16).enumerate() {
        let a = server.search(q, 10, 60).unwrap();
        let b = loaded.search(q, 10, 60).unwrap();
        assert_eq!(a.results, b.results, "query {qi}");
        assert_eq!(a.stats, b.stats, "query {qi}");
    }
}
