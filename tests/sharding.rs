//! Sharded scatter-gather integration tests: the S-shard server must agree
//! **bit-for-bit** with the single-shard `MustServer` oracle on the same
//! corpus (the gather merge is exact, per-shard similarities are the same
//! float ops as the unsharded engine's), stay thread-count invariant like
//! PR 2's server, and round-trip through the sharded bundle manifest.
//! Selective routing rides the same contracts: `r = S` routing is pinned
//! bit-identical to the unrouted scatter, post-insert radius growth keeps
//! routed searches able to find new objects, and query-time weight
//! overrides route exactly as a deployment frozen under those weights
//! would (summaries are stored unweighted; ω² is applied query-side).

use must::data::embed::embed_dataset;
use must::encoders::{
    ComposerKind, EncoderConfig, EncoderRegistry, LatentSpace, TargetEncoding, UnimodalKind,
};
use must::prelude::*;

/// Embeds a small MIT-States-style corpus and returns the corpus, weights,
/// and a 48-query workload.
fn fixture() -> (MultiVectorSet, Weights, Vec<MultiQuery>) {
    let ds = must::data::catalog::mit_states(0.05, 1717);
    let registry = EncoderRegistry::new(LatentSpace::DEFAULT, 1717);
    let config = EncoderConfig::new(
        TargetEncoding::Composed(ComposerKind::Clip),
        vec![UnimodalKind::Lstm],
    );
    let embedded = embed_dataset(&ds, &config, &registry);
    let queries: Vec<MultiQuery> =
        embedded.queries.iter().take(48).map(|q| q.query.clone()).collect();
    assert_eq!(queries.len(), 48, "fixture needs a full 48-query workload");
    (embedded.objects, Weights::new(vec![0.8, 0.5]).unwrap(), queries)
}

fn build_opts() -> MustBuildOptions {
    MustBuildOptions { gamma: 16, ..Default::default() }
}

/// The acceptance pin: for S in {2, 4, 8}, the sharded server's ranked
/// `(global id, similarity)` lists equal the S = 1 `MustServer` oracle's
/// bit for bit at an `l` where both resolve the exact joint top-k.  This
/// holds because (a) shard rows carry the same `f32` values at the same
/// lane offsets, so per-shard similarities are bitwise equal to the
/// unsharded engine's, and (b) the gather merge re-ranks by that exact
/// similarity over a candidate superset of the oracle's results.
#[test]
fn sharded_results_match_single_shard_oracle_bitwise() {
    let (objects, weights, queries) = fixture();
    let (k, l) = (10, 400);

    let oracle = MustServer::freeze(
        Must::build(objects.clone(), weights.clone(), build_opts()).unwrap(),
    );
    let mut oracle_worker = oracle.worker();
    let expected: Vec<_> =
        queries.iter().map(|q| oracle_worker.search(q, k, l).unwrap()).collect();

    for shards in [2usize, 4, 8] {
        let sharded = ShardedMust::build(
            objects.clone(),
            weights.clone(),
            build_opts(),
            ShardSpec::new(shards),
        )
        .unwrap();
        assert_eq!(sharded.num_shards(), shards);
        let server = ShardedServer::freeze(sharded);
        let mut worker = server.worker();
        for (qi, (q, want)) in queries.iter().zip(&expected).enumerate() {
            let got = worker.search(q, k, l).unwrap();
            assert_eq!(
                got.results, want.results,
                "S={shards} query {qi}: sharded merge must equal the single-shard oracle"
            );
        }
    }
}

/// Scatter (one scoped thread per shard), the sequential worker path, and
/// every `search_batch` thread count must agree bit-for-bit.
#[test]
fn sharded_serving_is_thread_count_invariant() {
    let (objects, weights, queries) = fixture();
    let (k, l) = (10, 60);
    let sharded =
        ShardedMust::build(objects, weights, build_opts(), ShardSpec::hashed(4)).unwrap();
    let server = ShardedServer::freeze(sharded);

    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    // The scattered one-off path agrees with the sequential worker path.
    for (qi, (q, want)) in queries.iter().zip(&serial).enumerate() {
        let got = server.search(q, k, l).unwrap();
        assert_eq!(got.results, want.results, "scatter query {qi}");
        assert_eq!(got.stats, want.stats, "scatter query {qi}");
    }

    // The batch API agrees for every thread count.
    for threads in [1, 3, 8] {
        let batch = server.search_batch(&queries, k, l, threads);
        for (qi, (got, want)) in batch.into_iter().zip(&serial).enumerate() {
            let got = got.unwrap();
            assert_eq!(got.results, want.results, "batch({threads}) query {qi}");
            assert_eq!(got.stats, want.stats, "batch({threads}) query {qi}");
        }
    }
}

/// Query-time weight overrides through the scatter-gather stack: for
/// S ∈ {2, 4}, `search_weighted(q, w)` on a sharded server frozen with
/// default weights must equal — bit for bit — a sharded server whose
/// shards were re-frozen with `w` over the *same* per-shard indexes.
/// The scatter threads the same override to every shard and the gather
/// merges candidates scored under that same override, so the DESIGN §7
/// ordering argument (sim desc, global id asc — a total order) holds
/// unchanged.
#[test]
fn sharded_weight_overrides_match_refrozen_shards() {
    let (objects, default_w, queries) = fixture();
    let override_w = Weights::from_squared(vec![0.15, 0.85]).unwrap();
    let (k, l) = (10, 60);

    for shards in [2usize, 4] {
        let built = ShardedMust::build(
            objects.clone(),
            default_w.clone(),
            build_opts(),
            ShardSpec::new(shards),
        )
        .unwrap();
        // Re-wrap every shard's prebuilt index under the override weights
        // — the offline redeploy the serving feature replaces.
        let refrozen_shards: Vec<Must> = (0..shards)
            .map(|s| {
                let shard = built.shard(s);
                Must::from_parts(
                    shard.objects().clone(),
                    override_w.clone(),
                    shard.index().clone(),
                    build_opts(),
                )
                .unwrap()
            })
            .collect();
        let id_maps: Vec<Vec<u32>> = (0..shards).map(|s| built.global_ids(s).to_vec()).collect();
        let refrozen = ShardedServer::freeze(
            ShardedMust::from_parts(refrozen_shards, id_maps, built.assignment()).unwrap(),
        );
        let server = ShardedServer::freeze(built);

        let mut worker = server.worker();
        for (qi, q) in queries.iter().take(24).enumerate() {
            let got = server.search_weighted(q, &override_w, k, l).unwrap();
            let want = refrozen.search(q, k, l).unwrap();
            assert_eq!(
                got.results, want.results,
                "S={shards} query {qi}: override must equal re-frozen shards"
            );
            assert_eq!(got.stats, want.stats, "S={shards} query {qi}");
            // Sequential worker path and scattered path agree under
            // overrides too.
            let seq = worker.search_weighted(q, &override_w, k, l).unwrap();
            assert_eq!(seq.results, got.results, "S={shards} query {qi}: worker");
            // Gather ordering: total order (sim desc, global id asc).
            for pair in got.results.windows(2) {
                assert!(
                    pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                    "S={shards} query {qi}: gather order violated"
                );
            }
        }

        // Batch override path is thread-count invariant.
        let serial = server.search_batch_weighted(&queries[..16], &override_w, k, l, 1);
        for threads in [2, 8] {
            let batch = server.search_batch_weighted(&queries[..16], &override_w, k, l, threads);
            for (qi, (a, b)) in batch.iter().zip(&serial).enumerate() {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(a.results, b.results, "S={shards} threads={threads} query {qi}");
            }
        }
    }
}

/// Offline sharded build → bundle v4 on disk → `ShardedServer::load` →
/// results identical to the in-process freeze, with the id maps intact.
#[test]
fn bundle_v4_load_serves_identically() {
    let (objects, weights, queries) = fixture();
    let sharded =
        ShardedMust::build(objects, weights, build_opts(), ShardSpec::new(3)).unwrap();
    let dir = std::env::temp_dir().join("must-sharding-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("sharded-{}.mustb", std::process::id()));
    persist::save_sharded(&sharded, &path).unwrap();
    let direct = ShardedServer::freeze(sharded);

    let loaded = ShardedServer::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.num_shards(), 3);
    assert_eq!(loaded.len(), direct.len());
    for (qi, q) in queries.iter().take(16).enumerate() {
        let a = direct.search(q, 10, 60).unwrap();
        let b = loaded.search(q, 10, 60).unwrap();
        assert_eq!(a.results, b.results, "query {qi}");
        assert_eq!(a.stats, b.stats, "query {qi}");
    }
}

/// A v3 single-shard bundle loads into the sharded serving layer as one
/// shard and serves exactly what the single-shard server serves.
#[test]
fn sharded_layer_adopts_v3_bundles() {
    let (objects, weights, queries) = fixture();
    let must = Must::build(objects, weights, build_opts()).unwrap();
    let dir = std::env::temp_dir().join("must-sharding-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("adopt-v3-{}.mustb", std::process::id()));
    persist::save(&must, &path).unwrap();
    let single = MustServer::freeze(must);

    let adopted = ShardedServer::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(adopted.num_shards(), 1);
    for (qi, q) in queries.iter().take(16).enumerate() {
        let a = single.search(q, 10, 60).unwrap();
        let b = adopted.search(q, 10, 60).unwrap();
        assert_eq!(a.results, b.results, "query {qi}");
        assert_eq!(a.stats, b.stats, "query {qi}");
    }
}

/// The acceptance pin for the routing knob: `RoutePolicy::new(S)` (full
/// fan-out, no per-shard beam override) must be **bit-identical** to the
/// unrouted scatter for S ∈ {2, 4, 8} — one-off, worker, and every batch
/// thread count.  Routing at `fan_out >= S` selects every shard in index
/// order with the caller's own `l`, so the per-shard searches and the
/// gather see exactly the calls the unrouted path makes.
#[test]
fn full_fan_out_routing_is_bit_identical_to_unrouted() {
    let (objects, weights, queries) = fixture();
    let (k, l) = (10, 60);
    for shards in [2usize, 4, 8] {
        let sharded = ShardedMust::build(
            objects.clone(),
            weights.clone(),
            build_opts(),
            ShardSpec::clustered(shards),
        )
        .unwrap();
        let server = ShardedServer::freeze(sharded);
        let routed = server.with_routing(RoutePolicy::new(shards));
        assert_eq!(routed.routing(), Some(RoutePolicy::new(shards)));

        let mut worker = routed.worker();
        for (qi, q) in queries.iter().enumerate() {
            let want = server.search(q, k, l).unwrap();
            let got = routed.search(q, k, l).unwrap();
            assert_eq!(got.results, want.results, "S={shards} query {qi}: routed scatter");
            assert_eq!(got.stats, want.stats, "S={shards} query {qi}: routed scatter stats");
            let seq = worker.search(q, k, l).unwrap();
            assert_eq!(seq.results, want.results, "S={shards} query {qi}: routed worker");
            assert_eq!(seq.stats, want.stats, "S={shards} query {qi}: routed worker stats");
        }

        let serial = server.search_batch(&queries, k, l, 1);
        for threads in [1, 3, 8] {
            let batch = routed.search_batch(&queries, k, l, threads);
            for (qi, (got, want)) in batch.into_iter().zip(&serial).enumerate() {
                let (got, want) = (got.unwrap(), want.as_ref().unwrap());
                assert_eq!(
                    got.results, want.results,
                    "S={shards} threads={threads} query {qi}: routed batch"
                );
                assert_eq!(got.stats, want.stats, "S={shards} threads={threads} query {qi}");
            }
        }
    }
}

/// Radius growth after `insert_object` keeps routing honest: a corpus of
/// three tight blobs is clustered into three shards, then an object
/// orthogonal to every blob is inserted.  The insert widens only the
/// target shard's radii around its *fixed* centroid, which is exactly
/// what lets a `fan_out = 1` routed self-query still reach the new
/// object — if the summary had stayed stale, the router would steer the
/// query to a shard that cannot contain it.
#[test]
fn routed_search_finds_objects_inserted_after_freeze() {
    // Three blobs along axes e0/e1/e2 (tiny deterministic jitter on a
    // disjoint coordinate keeps radii small), HNSW so shards can grow.
    let n = 30usize;
    let mut m0 = VectorSetBuilder::new(8, n);
    let mut m1 = VectorSetBuilder::new(4, n);
    for i in 0..n {
        let b = i % 3;
        let mut v0 = vec![0.0f32; 8];
        v0[b] = 1.0;
        v0[4 + b] = 0.1 * ((i / 3) % 3) as f32;
        m0.push_normalized(&v0).unwrap();
        let mut v1 = vec![0.0f32; 4];
        v1[b] = 1.0;
        v1[3] = 0.05 * (i % 4) as f32;
        m1.push_normalized(&v1).unwrap();
    }
    let objects = MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap();
    let opts = MustBuildOptions { recipe: must::graph::GraphRecipe::Hnsw, ..Default::default() };
    let mut sharded = ShardedMust::build(
        objects,
        Weights::uniform(2),
        opts,
        ShardSpec::clustered(3),
    )
    .unwrap();

    // The new object points along axes no blob occupies.
    let mut n0 = vec![0.0f32; 8];
    n0[3] = 1.0;
    let n1 = vec![0.0f32, 0.0, 0.0, 1.0];
    let new_id = sharded.insert_object(&[n0.clone(), n1.clone()]).unwrap();
    assert_eq!(new_id as usize, n);

    let server = ShardedServer::freeze(sharded)
        .with_routing(RoutePolicy::with_beam(1, 20));
    let query = MultiQuery::full(vec![n0, n1]);
    let hits = server.search(&query, 3, 20).unwrap();
    assert_eq!(
        hits.results[0].0, new_id,
        "a fan_out=1 routed self-query must find the freshly inserted object"
    );
}

/// Query-time weight overrides steer the router exactly as a deployment
/// whose summaries were frozen under those weights: summaries store
/// **unweighted** per-modality terms and the router applies ω² on the
/// query side, so `search_weighted(q, w)` on a default-weight snapshot
/// must match — bit for bit, routed at r < S — a server re-frozen under
/// `w` over the same shard indexes and the same persisted summaries (the
/// bundle-v6 reassembly path; clustered summaries cover only the
/// primary-member prefix, so a full re-derivation would not reproduce
/// them).
#[test]
fn routed_weight_overrides_match_refrozen_summaries() {
    let (objects, default_w, queries) = fixture();
    let override_w = Weights::from_squared(vec![0.15, 0.85]).unwrap();
    let (k, l) = (10, 60);
    let shards = 4usize;

    let built = ShardedMust::build(
        objects,
        default_w,
        build_opts(),
        ShardSpec::clustered(shards),
    )
    .unwrap();
    let refrozen_shards: Vec<Must> = (0..shards)
        .map(|s| {
            let shard = built.shard(s);
            Must::from_parts(
                shard.objects().clone(),
                override_w.clone(),
                shard.index().clone(),
                build_opts(),
            )
            .unwrap()
        })
        .collect();
    let id_maps: Vec<Vec<u32>> = (0..shards).map(|s| built.global_ids(s).to_vec()).collect();
    let summaries: Vec<_> = (0..shards).map(|s| built.summary(s).clone()).collect();
    let refrozen = ShardedServer::freeze(
        ShardedMust::from_parts_with_summaries(
            refrozen_shards,
            id_maps,
            built.assignment(),
            summaries,
        )
        .unwrap(),
    );
    let server = ShardedServer::freeze(built);
    for s in 0..shards {
        assert_eq!(server.summary(s), refrozen.summary(s), "summaries adopt the persisted parts");
    }

    for policy in [RoutePolicy::with_beam(1, 30), RoutePolicy::with_beam(2, 30)] {
        let routed = server.with_routing(policy);
        let reference = refrozen.with_routing(policy);
        for (qi, q) in queries.iter().take(24).enumerate() {
            let got = routed.search_weighted(q, &override_w, k, l).unwrap();
            let want = reference.search(q, k, l).unwrap();
            assert_eq!(
                got.results, want.results,
                "policy {policy:?} query {qi}: override routing must equal frozen-weight routing"
            );
            assert_eq!(got.stats, want.stats, "policy {policy:?} query {qi}");
        }
    }
}

/// The sharded serve loop (runtime-backed, persistent per-worker shard
/// scratch) answers a full request stream with, per query, exactly the
/// sequential `ShardedWorker` outcome — bit-identity across workers and
/// work stealing, through the scatter path.
#[test]
fn sharded_serve_loop_matches_sequential_worker() {
    let (objects, weights, queries) = fixture();
    let (k, l) = (10, 80);
    let sharded = ShardedMust::build(objects, weights, build_opts(), ShardSpec::new(3)).unwrap();
    let server = ShardedServer::freeze(sharded);
    let mut worker = server.worker();
    let serial: Vec<_> = queries.iter().map(|q| worker.search(q, k, l).unwrap()).collect();

    let (req_tx, req_rx) = std::sync::mpsc::channel();
    let (rep_tx, rep_rx) = std::sync::mpsc::channel();
    for (i, q) in queries.iter().enumerate() {
        req_tx.send(ServeRequest { id: i as u64, query: q.clone(), k, l }).unwrap();
    }
    drop(req_tx);
    let served = server.serve(req_rx, rep_tx, 4);
    assert_eq!(served, queries.len());

    let mut replies: Vec<ServeReply> = rep_rx.iter().collect();
    assert_eq!(replies.len(), queries.len());
    replies.sort_by_key(|r| r.id);
    for (i, rep) in replies.into_iter().enumerate() {
        assert_eq!(rep.id, i as u64);
        let out = rep.outcome.unwrap();
        assert_eq!(out.results, serial[i].results, "request {i}");
        assert_eq!(out.stats, serial[i].stats, "request {i}");
    }
}
