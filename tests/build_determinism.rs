//! Build determinism across thread budgets: the wave-scheduled HNSW (and
//! every other backend touched by the thread knob) must produce
//! byte-identical bundles for `threads ∈ {1, 2, 4}` — the on-disk proof
//! that the worker budget is a wall-clock knob, not an algorithm knob.

use must::graph::GraphRecipe;
use must::prelude::*;

/// Deterministic pseudo-random corpus: `n` objects, two modalities.
fn corpus(n: usize, d0: usize, d1: usize, seed: u64) -> MultiVectorSet {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        ((state >> 40) as f32 / (1u64 << 24) as f32) + 0.05
    };
    let mut m0 = VectorSetBuilder::new(d0, n);
    let mut m1 = VectorSetBuilder::new(d1, n);
    for _ in 0..n {
        let v0: Vec<f32> = (0..d0).map(|_| next()).collect();
        let v1: Vec<f32> = (0..d1).map(|_| next()).collect();
        m0.push_normalized(&v0).unwrap();
        m1.push_normalized(&v1).unwrap();
    }
    MultiVectorSet::new(vec![m0.finish(), m1.finish()]).unwrap()
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("must-build-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.bundle", std::process::id()))
}

fn bundle_bytes(set: &MultiVectorSet, recipe: GraphRecipe, threads: usize, tag: &str) -> Vec<u8> {
    let weights = Weights::uniform(2);
    let must = Must::build(
        set.clone(),
        weights,
        MustBuildOptions { gamma: 12, recipe, threads, ..Default::default() },
    )
    .unwrap();
    let path = tmp(tag);
    persist::save_quantized(&must, &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn v7_bundles_are_byte_identical_across_thread_budgets() {
    let set = corpus(900, 12, 8, 0xD1CE);
    for recipe in [GraphRecipe::Hnsw, GraphRecipe::Fused] {
        let t1 = bundle_bytes(&set, recipe, 1, &format!("{recipe:?}-t1"));
        for threads in [2usize, 4] {
            let tn = bundle_bytes(&set, recipe, threads, &format!("{recipe:?}-t{threads}"));
            assert_eq!(t1, tn, "{recipe:?}: bundle differs between T=1 and T={threads}");
        }
    }
}

#[test]
fn sharded_bundles_are_byte_identical_across_thread_budgets() {
    let set = corpus(600, 10, 6, 0xFACE);
    let save = |threads: usize| {
        let sharded = ShardedMust::build(
            set.clone(),
            Weights::uniform(2),
            MustBuildOptions {
                gamma: 12,
                recipe: GraphRecipe::Hnsw,
                threads,
                ..Default::default()
            },
            ShardSpec::clustered(3),
        )
        .unwrap();
        let path = tmp(&format!("sharded-t{threads}"));
        persist::save_sharded(&sharded, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        bytes
    };
    let t1 = save(1);
    assert_eq!(t1, save(2), "sharded bundle differs between T=1 and T=2");
    assert_eq!(t1, save(4), "sharded bundle differs between T=1 and T=4");
}
